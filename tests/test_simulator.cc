#include <gtest/gtest.h>

#include "common/abort.hh"
#include "common/log.hh"

#include "assembler/assembler.hh"
#include "sim/simulator.hh"

using namespace pipesim;

namespace
{

const char *tinyProgram = R"(
    li r1, 1
    li r2, 2
    add r3, r1, r2
    halt
)";

} // namespace

TEST(SimulatorTest, RunsToCompletion)
{
    Program p = assembler::assemble(tinyProgram);
    SimConfig cfg;
    Simulator sim(cfg, p);
    EXPECT_FALSE(sim.done());
    const auto res = sim.run();
    EXPECT_TRUE(sim.done());
    EXPECT_EQ(res.instructions, 4u);
    EXPECT_GT(res.totalCycles, 0u);
}

TEST(SimulatorTest, StepAdvancesOneCycle)
{
    Program p = assembler::assemble(tinyProgram);
    SimConfig cfg;
    Simulator sim(cfg, p);
    EXPECT_EQ(sim.now(), 0u);
    sim.step();
    EXPECT_EQ(sim.now(), 1u);
}

TEST(SimulatorTest, ConfigNamesBothStrategies)
{
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-32", 64);
    EXPECT_EQ(cfg.fetchName(), "16-32");
    cfg.fetch = conventionalConfigFor(64);
    EXPECT_EQ(cfg.fetchName(), "conv");
}

TEST(SimulatorTest, TableIIConfigParameters)
{
    const auto c88 = pipeConfigFor("8-8", 128);
    EXPECT_EQ(c88.lineBytes, 8u);
    EXPECT_EQ(c88.iqBytes, 8u);
    EXPECT_EQ(c88.iqbBytes, 8u);
    const auto c1632 = pipeConfigFor("16-32", 128);
    EXPECT_EQ(c1632.lineBytes, 32u);
    EXPECT_EQ(c1632.iqBytes, 16u);
    EXPECT_EQ(c1632.iqbBytes, 32u);
    const auto c3232 = pipeConfigFor("32-32", 128);
    EXPECT_EQ(c3232.lineBytes, 32u);
    EXPECT_EQ(c3232.iqBytes, 32u);
    EXPECT_THROW(pipeConfigFor("64-64", 128), FatalError);
    EXPECT_EQ(tableIIConfigNames().size(), 4u);
}

TEST(SimulatorTest, ConventionalLineClampedToCacheSize)
{
    const auto cfg = conventionalConfigFor(8, 16);
    EXPECT_EQ(cfg.lineBytes, 8u);
}

TEST(SimulatorTest, ResultCountersSnapshot)
{
    Program p = assembler::assemble(tinyProgram);
    SimConfig cfg;
    const auto res = runSimulation(cfg, p);
    EXPECT_EQ(res.counter("cpu.retired"), 4u);
    EXPECT_EQ(res.counter("not.a.counter"), 0u);
    EXPECT_GT(res.counters.size(), 10u);
}

TEST(SimulatorTest, DeterministicAcrossRuns)
{
    Program p = assembler::assemble(tinyProgram);
    SimConfig cfg;
    const auto a = runSimulation(cfg, p);
    const auto b = runSimulation(cfg, p);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.counters, b.counters);
}

TEST(SimulatorTest, DeadlockDetected)
{
    // A store whose data never arrives wedges the machine; the
    // progress watchdog must fire rather than spin forever.
    const char *src = R"(
        li r1, 0x4000
        ld [r1 + 0]
        mov r2, r7
        mov r2, r7     ; LDQ empty forever
        halt
    .data 0x4000
        .word 1
    )";
    Program p = assembler::assemble(src);
    SimConfig cfg;
    cfg.progressWindow = 5000;
    Simulator sim(cfg, p);
    try {
        sim.run();
        FAIL() << "expected SimAbort";
    } catch (const SimAbort &e) {
        EXPECT_NE(std::string(e.what()).find("deadlocked"),
                  std::string::npos);
        // The abort carries a full machine snapshot for forensics.
        ASSERT_TRUE(e.hasSnapshot());
        const MachineSnapshot &snap = e.snapshot();
        EXPECT_GT(snap.cycle, 5000u);
        EXPECT_GT(snap.instructionsRetired, 0u);
        EXPECT_FALSE(snap.lastRetiredPcs.empty());
        // Each component contributed its dumpState() text.
        EXPECT_NE(snap.pipelineState.find("pipeline:"),
                  std::string::npos);
        EXPECT_FALSE(snap.fetchState.empty());
        EXPECT_NE(snap.memoryState.find("input bus"),
                  std::string::npos);
        const std::string report = snap.toString();
        EXPECT_NE(report.find("machine snapshot at cycle"),
                  std::string::npos);
        EXPECT_NE(report.find("last retired PCs"), std::string::npos);
    }
}

TEST(SimulatorTest, MaxCyclesEnforced)
{
    const char *src = R"(
        lbr b0, loop
    loop:
        nop
        pbr b0, 1, always
        nop
    )";
    Program p = assembler::assemble(src);
    SimConfig cfg;
    cfg.maxCycles = 2000;
    Simulator sim(cfg, p);
    try {
        sim.run();
        FAIL() << "expected SimAbort";
    } catch (const SimAbort &e) {
        EXPECT_NE(std::string(e.what()).find("exceeded"),
                  std::string::npos);
        ASSERT_TRUE(e.hasSnapshot());
        EXPECT_GT(e.snapshot().cycle, 2000u);
    }
}

TEST(SimulatorTest, StatsDumpIsPopulated)
{
    Program p = assembler::assemble(tinyProgram);
    SimConfig cfg;
    Simulator sim(cfg, p);
    sim.run();
    const std::string dump = sim.stats().dump();
    EXPECT_NE(dump.find("cpu.retired"), std::string::npos);
    EXPECT_NE(dump.find("fetch."), std::string::npos);
    EXPECT_NE(dump.find("mem."), std::string::npos);
}
