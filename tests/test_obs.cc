#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "assembler/assembler.hh"
#include "common/log.hh"
#include "obs/cpi_stack.hh"
#include "obs/json.hh"
#include "obs/stats_export.hh"
#include "obs/trace_export.hh"
#include "sim/simulator.hh"
#include "workloads/benchmark_program.hh"
#include "workloads/livermore.hh"

using namespace pipesim;

namespace
{

const workloads::Benchmark &
smallLivermore()
{
    static const auto b = workloads::buildLivermoreBenchmark(0.02);
    return b;
}

/** Two-kernel Livermore workload for trace golden tests. */
const workloads::Benchmark &
twoLoopLivermore()
{
    static const auto b = [] {
        std::vector<codegen::Kernel> ks{workloads::livermoreKernel(1, 0.05),
                                        workloads::livermoreKernel(3, 0.05)};
        return workloads::buildBenchmark(ks);
    }();
    return b;
}

SimConfig
configFor(const std::string &strategy, unsigned cache, unsigned mem,
          unsigned bus = 4)
{
    SimConfig cfg;
    if (strategy == "conv")
        cfg.fetch = conventionalConfigFor(cache, 16);
    else if (strategy == "tib")
        cfg.fetch = tibConfigFor(cache, 16);
    else
        cfg.fetch = pipeConfigFor(strategy, cache);
    cfg.mem.accessTime = mem;
    cfg.mem.busWidthBytes = bus;
    return cfg;
}

} // namespace

TEST(ProbePoint, NotifyReachesListenersAndDisconnectStops)
{
    obs::ProbePoint<obs::CycleClassEvent> point;
    EXPECT_FALSE(point.active());

    unsigned a = 0;
    unsigned b = 0;
    const auto ida = point.connect(
        [&](const obs::CycleClassEvent &) { ++a; });
    const auto idb = point.connect(
        [&](const obs::CycleClassEvent &) { ++b; });
    EXPECT_TRUE(point.active());

    point.notify(obs::CycleClassEvent{0, obs::CycleClass::Issue});
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 1u);

    point.disconnect(ida);
    point.notify(obs::CycleClassEvent{1, obs::CycleClass::Issue});
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 2u);

    point.disconnect(idb);
    EXPECT_FALSE(point.active());
    point.disconnect(idb); // double disconnect is harmless
}

TEST(CpiStack, PartitionsEveryWorkloadAndStrategy)
{
    // The stack's defining invariant: on every tier-1 workload and
    // strategy, the non-drain components sum exactly to totalCycles,
    // and adding drain gives the number of simulated ticks.
    const auto &bench = smallLivermore();
    for (const std::string strategy : {"conv", "8-8", "16-16", "tib"}) {
        for (unsigned mem : {1u, 6u}) {
            SimConfig cfg = configFor(strategy, 128, mem);
            Simulator sim(cfg, bench.program);
            const SimResult res = sim.run();

            const obs::CpiStack *stack = sim.cpiStack();
            ASSERT_NE(stack, nullptr) << strategy << " mem " << mem;
            EXPECT_EQ(stack->accountedCycles(),
                      std::uint64_t(res.totalCycles))
                << strategy << " mem " << mem;
            EXPECT_EQ(stack->totalTicks(),
                      std::uint64_t(sim.now()))
                << strategy << " mem " << mem;
            // Explicitly re-sum the components: the partition is
            // exact, not merely approximately right.
            std::uint64_t all = 0;
            for (unsigned c = 0; c < obs::numCycleClasses; ++c)
                all += stack->component(obs::CycleClass(c));
            EXPECT_EQ(all, stack->totalTicks())
                << strategy << " mem " << mem;
            EXPECT_EQ(all - stack->component(obs::CycleClass::Drain),
                      std::uint64_t(res.totalCycles))
                << strategy << " mem " << mem;
        }
    }
}

TEST(CpiStack, BranchyWorkloadPartitions)
{
    // A branch-heavy hand-written loop with queue pressure: exercises
    // QueueFull/RegBusy classes too.
    const char *src = R"(
        li  r1, 0x4000
        li  r2, 40
        lbr b0, loop
    loop:
        ld  [r1 + 0]
        add r3, r3, r7
        add r4, r3, r3
        subi r2, r2, 1
        pbr b0, 0, nez, r2
        st  [r1 + 64]
        mov r7, r4
        halt
    .data 0x4000
        .word 7
    )";
    Program p = assembler::assemble(src);
    for (unsigned mem : {1u, 8u}) {
        SimConfig cfg = configFor("16-16", 64, mem);
        Simulator sim(cfg, p);
        const SimResult res = sim.run();
        ASSERT_NE(sim.cpiStack(), nullptr);
        EXPECT_EQ(sim.cpiStack()->accountedCycles(),
                  std::uint64_t(res.totalCycles))
            << "mem " << mem;
        EXPECT_EQ(sim.cpiStack()->totalTicks(), std::uint64_t(sim.now()))
            << "mem " << mem;
    }
}

TEST(CpiStack, CountersRegisteredInResult)
{
    Program p = assembler::assemble("nop\nnop\nhalt");
    SimConfig cfg;
    Simulator sim(cfg, p);
    const SimResult res = sim.run();

    for (const char *name :
         {"cpi_stack.issue", "cpi_stack.fetch_starve",
          "cpi_stack.load_data_wait", "cpi_stack.queue_full",
          "cpi_stack.reg_busy", "cpi_stack.bus_contention",
          "cpi_stack.drain"}) {
        EXPECT_TRUE(res.hasCounter(name)) << name;
    }
    EXPECT_EQ(res.counter("cpi_stack.issue"),
              sim.cpiStack()->component(obs::CycleClass::Issue));
    EXPECT_EQ(res.counter("cpi_stack.issue"), 2u); // nop, nop (HALT=drain)

    const std::string table = sim.cpiStack()->table();
    EXPECT_NE(table.find("issue"), std::string::npos);
    EXPECT_NE(table.find("total"), std::string::npos);
}

TEST(CpiStack, DisabledByConfig)
{
    Program p = assembler::assemble("halt");
    SimConfig cfg;
    cfg.cpiStack = false;
    Simulator sim(cfg, p);
    const SimResult res = sim.run();
    EXPECT_EQ(sim.cpiStack(), nullptr);
    EXPECT_FALSE(res.hasCounter("cpi_stack.issue"));
}

TEST(SimResultTest, HasCounterDistinguishesZeroFromAbsent)
{
    Program p = assembler::assemble("halt");
    SimConfig cfg;
    const SimResult res = runSimulation(cfg, p);
    EXPECT_TRUE(res.hasCounter("cpu.loads"));
    EXPECT_EQ(res.counter("cpu.loads"), 0u);
    EXPECT_FALSE(res.hasCounter("no.such.counter"));
    EXPECT_EQ(res.counter("no.such.counter"), 0u);
}

TEST(TraceExport, TwoLoopLivermoreTraceValidates)
{
    const auto &bench = twoLoopLivermore();
    SimConfig cfg = configFor("16-16", 128, 6, 8);
    Simulator sim(cfg, bench.program);
    obs::ChromeTraceWriter trace;
    trace.attach(sim.probes());
    const SimResult res = sim.run();
    trace.detach();
    EXPECT_GT(trace.eventCount(), 0u);

    std::ostringstream os;
    trace.write(os);
    const auto doc = obs::parseJson(os.str());
    ASSERT_TRUE(doc.has_value()) << "trace output is not valid JSON";
    ASSERT_TRUE(doc->isObject());

    const obs::JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_GE(events->array.size(), trace.eventCount());

    std::set<std::string> names;
    for (const auto &ev : events->array) {
        ASSERT_TRUE(ev.isObject());
        // The Trace Event Format's required keys, on every event.
        for (const char *k : {"ph", "ts", "pid", "name"})
            EXPECT_NE(ev.find(k), nullptr) << "missing key " << k;
        if (const auto *name = ev.find("name"))
            names.insert(name->string);
    }

    // The run issues instructions, hits and misses the icache, and
    // fetches lines off-chip, so these tracks must all be populated.
    for (const char *expected :
         {"issue", "icache_hit", "icache_miss", "line_fill",
          "queue_occupancy", "process_name", "thread_name"}) {
        EXPECT_TRUE(names.count(expected)) << "no event named "
                                           << expected;
    }
    // Retire instants are labelled with mnemonics.
    EXPECT_TRUE(names.count("halt"));
}

TEST(TraceExport, RetireInstantsCanBeDisabled)
{
    Program p = assembler::assemble("nop\nnop\nnop\nhalt");
    SimConfig cfg;
    Simulator sim(cfg, p);
    obs::ChromeTraceWriter trace(/*record_retires=*/false);
    trace.attach(sim.probes());
    sim.run();
    trace.detach();

    std::ostringstream os;
    trace.write(os);
    const auto doc = obs::parseJson(os.str());
    ASSERT_TRUE(doc.has_value());
    for (const auto &ev : doc->find("traceEvents")->array)
        EXPECT_NE(ev.find("name")->string, "nop");
}

TEST(StatsExport, RoundTripsThroughParser)
{
    Program p = assembler::assemble("nop\nnop\nhalt");
    SimConfig cfg;
    Simulator sim(cfg, p);
    const SimResult res = sim.run();

    std::ostringstream os;
    obs::writeStatsJson(os, res, &sim.stats(), "unit \"test\"");
    const auto doc = obs::parseJson(os.str());
    ASSERT_TRUE(doc.has_value()) << os.str();

    EXPECT_EQ(doc->find("label")->string, "unit \"test\"");
    EXPECT_EQ(doc->find("totalCycles")->number,
              double(res.totalCycles));
    EXPECT_EQ(doc->find("instructions")->number,
              double(res.instructions));

    const obs::JsonValue *counters = doc->find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_TRUE(counters->isObject());
    // Every SimResult counter is present, including cpi_stack.*.
    EXPECT_EQ(counters->object.size(), res.counters.size());
    ASSERT_NE(counters->find("cpu.retired"), nullptr);
    EXPECT_EQ(counters->find("cpu.retired")->number, 3.0);
    EXPECT_NE(counters->find("cpi_stack.issue"), nullptr);

    const obs::JsonValue *formulas = doc->find("formulas");
    ASSERT_NE(formulas, nullptr);
    EXPECT_TRUE(formulas->isObject());
}

TEST(Json, WriterEscapesAndNests)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.key("s").value("a\"b\\c\n\t");
    w.key("arr").beginArray();
    w.value(std::uint64_t(1)).value(2.5).value(true).value("x");
    w.endArray();
    w.key("neg").value(std::int64_t(-3));
    w.endObject();

    const auto doc = obs::parseJson(os.str());
    ASSERT_TRUE(doc.has_value()) << os.str();
    EXPECT_EQ(doc->find("s")->string, "a\"b\\c\n\t");
    ASSERT_EQ(doc->find("arr")->array.size(), 4u);
    EXPECT_EQ(doc->find("arr")->array[1].number, 2.5);
    EXPECT_TRUE(doc->find("arr")->array[2].boolean);
    EXPECT_EQ(doc->find("neg")->number, -3.0);
}

TEST(Json, ParserRejectsMalformedDocuments)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "{\"a\":1} trailing", "tru",
          "\"unterminated", "{\"a\" 1}", "[1 2]", "01"}) {
        EXPECT_FALSE(obs::parseJson(bad).has_value()) << bad;
    }
    for (const char *good :
         {"{}", "[]", "null", "true", "-1.5e3", "\"\\u0041\"",
          "{\"a\":[{\"b\":null}]}"}) {
        EXPECT_TRUE(obs::parseJson(good).has_value()) << good;
    }
    EXPECT_EQ(obs::parseJson("\"\\u0041\"")->string, "A");
}

TEST(Probes, RetireEventsMatchInstructionCount)
{
    const auto &bench = smallLivermore();
    SimConfig cfg = configFor("16-16", 128, 1);
    Simulator sim(cfg, bench.program);
    std::uint64_t retires = 0;
    const auto id = sim.probes().retire.connect(
        [&](const obs::RetireEvent &) { ++retires; });
    const SimResult res = sim.run();
    sim.probes().retire.disconnect(id);
    EXPECT_EQ(retires, res.instructions);
}
