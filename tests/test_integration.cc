#include <gtest/gtest.h>

#include "common/log.hh"

#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "workloads/benchmark_program.hh"
#include "workloads/livermore.hh"
#include "workloads/reference.hh"

using namespace pipesim;

namespace
{

/** Shared small-scale benchmark so the suite stays fast. */
const workloads::Benchmark &
bench()
{
    static const auto b = workloads::buildLivermoreBenchmark(0.05);
    return b;
}

/** Run one config and verify every kernel against the reference. */
SimResult
runAndVerify(const SimConfig &cfg)
{
    Simulator sim(cfg, bench().program);
    const auto res = sim.run();
    for (std::size_t i = 0; i < bench().kernels.size(); ++i) {
        std::string diag;
        EXPECT_TRUE(workloads::verifyAgainstReference(
            sim.dataMemory(), bench().kernels[i], bench().codeInfo[i],
            &diag))
            << diag;
    }
    return res;
}

} // namespace

/**
 * Every kernel, one at a time, on a representative configuration:
 * isolates which kernel breaks when something regresses.
 */
class PerKernel : public ::testing::TestWithParam<int>
{
};

TEST_P(PerKernel, ComputesReferenceResults)
{
    const int id = GetParam();
    const auto kernel = workloads::livermoreKernel(id, 0.05);
    std::vector<codegen::Kernel> ks{kernel};
    const auto b = workloads::buildBenchmark(ks);
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    cfg.mem.accessTime = 2;
    Simulator sim(cfg, b.program);
    sim.run();
    std::string diag;
    EXPECT_TRUE(workloads::verifyAgainstReference(
        sim.dataMemory(), b.kernels[0], b.codeInfo[0], &diag))
        << diag;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, PerKernel, ::testing::Range(1, 15));

TEST(Integration, FullBenchmarkConventional)
{
    SimConfig cfg;
    cfg.fetch = conventionalConfigFor(128, 16);
    const auto res = runAndVerify(cfg);
    EXPECT_GT(res.instructions, 1000u);
}

TEST(Integration, FullBenchmarkAllPipeConfigs)
{
    for (const auto &name : tableIIConfigNames()) {
        SimConfig cfg;
        cfg.fetch = pipeConfigFor(name, 128);
        runAndVerify(cfg);
    }
}

TEST(Integration, InstructionCountIndependentOfFetchStrategy)
{
    SimConfig a;
    a.fetch = conventionalConfigFor(64, 16);
    SimConfig b;
    b.fetch = pipeConfigFor("8-8", 64);
    const auto ra = runSimulation(a, bench().program);
    const auto rb = runSimulation(b, bench().program);
    EXPECT_EQ(ra.instructions, rb.instructions);
}

TEST(Integration, PaperScaleInstructionCountNearPaper)
{
    // The paper executes 150,575 instructions; our regenerated
    // benchmark should be within ~10% at scale 1.0.
    static const auto full = workloads::buildLivermoreBenchmark(1.0);
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    const auto res = runSimulation(cfg, full.program);
    EXPECT_GT(res.instructions, 135000u);
    EXPECT_LT(res.instructions, 170000u);
}

TEST(Integration, LoopSizesSpanTableIRange)
{
    // Table I inner loops range from 56 to 732 bytes; ours must be
    // the same order of magnitude with both small and large bodies.
    unsigned smallest = unsigned(-1);
    unsigned largest = 0;
    for (const auto &ci : bench().codeInfo) {
        smallest = std::min(smallest, ci.innerLoopBytes);
        largest = std::max(largest, ci.innerLoopBytes);
    }
    EXPECT_LE(smallest, 80u);
    EXPECT_GE(largest, 400u);
}

TEST(Integration, GuaranteedOnlyPolicyStillComputesCorrectly)
{
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 64);
    cfg.fetch.offchipPolicy = OffchipPolicy::GuaranteedOnly;
    cfg.mem.accessTime = 6;
    runAndVerify(cfg);
}

TEST(Integration, PipelinedMemoryCorrectAndNotSlower)
{
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-32", 64);
    cfg.mem.accessTime = 6;
    cfg.mem.busWidthBytes = 8;
    cfg.mem.pipelined = false;
    const auto non_pipe = runAndVerify(cfg);
    cfg.mem.pipelined = true;
    const auto pipe = runAndVerify(cfg);
    EXPECT_LE(pipe.totalCycles, non_pipe.totalCycles);
}

TEST(Integration, DataPriorityModeCorrect)
{
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 64);
    cfg.mem.instructionPriority = false;
    cfg.mem.accessTime = 3;
    runAndVerify(cfg);
}

TEST(Integration, CompactFormatBenchmarkCorrect)
{
    static const auto compact = workloads::buildLivermoreBenchmark(
        0.05, isa::FormatMode::Compact);
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    Simulator sim(cfg, compact.program);
    sim.run();
    for (std::size_t i = 0; i < compact.kernels.size(); ++i) {
        std::string diag;
        EXPECT_TRUE(workloads::verifyAgainstReference(
            sim.dataMemory(), compact.kernels[i], compact.codeInfo[i],
            &diag))
            << diag;
    }
    // Compact code is smaller than fixed-32 code.
    EXPECT_LT(compact.program.codeSize(), bench().program.codeSize());
}

TEST(Integration, PaperHeadlineSmallCacheSpeedup)
{
    // "the processor performs up to twice as fast as a processor
    // using the conventional cache-only approach with a small cache
    // size": with a 6-cycle memory and a 4-byte bus, 16-16 at a tiny
    // cache must beat conventional by a wide margin.
    SweepSpec spec;
    spec.cacheSizes = {16};
    spec.strategies = {"conv", "16-16"};
    spec.mem.accessTime = 6;
    spec.mem.busWidthBytes = 4;
    const Table t = runCacheSweep(spec, bench().program).table;
    const auto conv = std::stoull(t.at(0, 1));
    const auto pipe = std::stoull(t.at(0, 2));
    EXPECT_GT(double(conv) / double(pipe), 1.5);
}

TEST(Integration, PipeAlwaysBeatsConventionalAtSlowMemory)
{
    // Paper: "For a memory access time larger than 1 clock cycle,
    // all PIPE configurations always perform better than the
    // conventional cache."
    SweepSpec spec;
    spec.cacheSizes = {32, 128};
    spec.mem.accessTime = 6;
    spec.mem.busWidthBytes = 8;
    const Table t = runCacheSweep(spec, bench().program).table;
    for (std::size_t row = 0; row < t.numRows(); ++row) {
        const auto conv = std::stoull(t.at(row, 1));
        for (std::size_t col = 2; col < t.numCols(); ++col) {
            if (t.at(row, col) == "-")
                continue;
            EXPECT_LT(std::stoull(t.at(row, col)), conv)
                << "row " << row << " col " << col;
        }
    }
}
