#include <gtest/gtest.h>

#include "common/log.hh"

#include <bit>

#include "assembler/assembler.hh"
#include "assembler/lexer.hh"

using namespace pipesim;
using namespace pipesim::assembler;
using isa::FormatMode;
using isa::Opcode;

TEST(Lexer, BasicTokens)
{
    const auto toks = tokenizeLine("add r1, r2, r3 ; comment", 1);
    ASSERT_EQ(toks.size(), 7u); // add r1 , r2 , r3 EOL
    EXPECT_EQ(toks[0].kind, TokenKind::Ident);
    EXPECT_EQ(toks[0].text, "add");
    EXPECT_EQ(toks[1].kind, TokenKind::Reg);
    EXPECT_EQ(toks[1].value, 1);
    EXPECT_EQ(toks[2].kind, TokenKind::Comma);
    EXPECT_EQ(toks.back().kind, TokenKind::EndOfLine);
}

TEST(Lexer, MemoryOperandTokens)
{
    const auto toks = tokenizeLine("ld [r1 + 0x10]", 1);
    EXPECT_EQ(toks[1].kind, TokenKind::LBracket);
    EXPECT_EQ(toks[2].kind, TokenKind::Reg);
    EXPECT_EQ(toks[3].kind, TokenKind::Plus);
    EXPECT_EQ(toks[4].kind, TokenKind::Int);
    EXPECT_EQ(toks[4].value, 16);
    EXPECT_EQ(toks[5].kind, TokenKind::RBracket);
}

TEST(Lexer, NegativeLiteralsAndMinus)
{
    const auto toks = tokenizeLine("li r1, -42", 1);
    EXPECT_EQ(toks[3].kind, TokenKind::Int);
    EXPECT_EQ(toks[3].value, -42);
}

TEST(Lexer, BranchRegistersAndDirectives)
{
    const auto toks = tokenizeLine(".equ foo, 7", 1);
    EXPECT_EQ(toks[0].kind, TokenKind::Directive);
    EXPECT_EQ(toks[0].text, ".equ");
    const auto toks2 = tokenizeLine("lbr b3, loop", 1);
    EXPECT_EQ(toks2[1].kind, TokenKind::BReg);
    EXPECT_EQ(toks2[1].value, 3);
    EXPECT_EQ(toks2[3].kind, TokenKind::Ident);
}

TEST(Lexer, HashCommentsAndBadChar)
{
    const auto toks = tokenizeLine("nop # trailing", 1);
    ASSERT_EQ(toks.size(), 2u);
    EXPECT_THROW(tokenizeLine("nop @", 1), FatalError);
}

TEST(Assembler, LabelsResolveForwardAndBackward)
{
    const char *src = R"(
        lbr b0, fwd
    back:
        nop
    fwd:
        lbr b1, back
        halt
    )";
    Program p = assemble(src, FormatMode::Compact);
    // lbr(4) nop(2) => fwd at 6, back at 4
    const auto i0 = *p.decodeAt(0);
    EXPECT_EQ(i0.op, Opcode::Lbr);
    EXPECT_EQ(i0.imm, 6);
    const auto i2 = *p.decodeAt(6);
    EXPECT_EQ(i2.imm, 4);
}

TEST(Assembler, EquAndSymbolImmediates)
{
    Program p = assemble(".equ N, 100\n li r1, N\n halt");
    EXPECT_EQ(p.decodeAt(0)->imm, 100);
    EXPECT_EQ(p.symbol("N"), Addr(100));
}

TEST(Assembler, DataSegmentsWordsFloatsSpace)
{
    const char *src = R"(
        halt
    .data 0x4000
    tab: .word 1, 2, deadcode
         .float 1.5, -0.25
         .space 8
    end:
    .text
    deadcode:
        nop
    )";
    Program p = assemble(src);
    ASSERT_EQ(p.dataSegments().size(), 1u);
    const auto &seg = p.dataSegments()[0];
    EXPECT_EQ(seg.base, 0x4000u);
    // 3 words + 2 floats + 8 bytes of space
    EXPECT_EQ(seg.bytes.size(), 3 * 4 + 2 * 4 + 8u);
    EXPECT_EQ(*p.symbol("tab"), 0x4000u);
    EXPECT_EQ(*p.symbol("end"), 0x4000u + 28u);
    // .word symbol reference resolved to the label's address.
    const Word third = Word(seg.bytes[8]) | Word(seg.bytes[9]) << 8 |
                       Word(seg.bytes[10]) << 16 |
                       Word(seg.bytes[11]) << 24;
    EXPECT_EQ(third, *p.symbol("deadcode"));
    // .float encodes IEEE-754 single.
    const Word f = Word(seg.bytes[12]) | Word(seg.bytes[13]) << 8 |
                   Word(seg.bytes[14]) << 16 | Word(seg.bytes[15]) << 24;
    EXPECT_EQ(f, std::bit_cast<Word>(1.5f));
    const Word g = Word(seg.bytes[16]) | Word(seg.bytes[17]) << 8 |
                   Word(seg.bytes[18]) << 16 | Word(seg.bytes[19]) << 24;
    EXPECT_EQ(g, std::bit_cast<Word>(-0.25f));
}

TEST(Assembler, EntryDirective)
{
    Program p =
        assemble("nop\nstart: halt\n.entry start", FormatMode::Compact);
    EXPECT_EQ(p.entry(), 2u);
    Program p32 = assemble("nop\nstart: halt\n.entry start");
    EXPECT_EQ(p32.entry(), 4u); // fixed-32 default format
}

TEST(Assembler, OrgPadsWithZeroParcels)
{
    Program p = assemble("nop\n.org 8\nhalt", FormatMode::Compact);
    EXPECT_EQ(p.decodeAt(8)->op, Opcode::Halt);
    EXPECT_EQ(p.codeSize(), 10u);
}

TEST(Assembler, AlignDirective)
{
    Program p = assemble("nop\n.align 8\nhalt", FormatMode::Compact);
    EXPECT_EQ(p.decodeAt(8)->op, Opcode::Halt);
}

TEST(Assembler, CompactAndFixedSizesDiffer)
{
    const char *src = "add r1, r2, r3\nhalt";
    EXPECT_EQ(assemble(src, FormatMode::Compact).codeSize(), 4u);
    EXPECT_EQ(assemble(src, FormatMode::Fixed32).codeSize(), 8u);
}

TEST(Assembler, MemoryOperandForms)
{
    Program p = assemble(
        "ld [r1]\nld [r2 + 4]\nld [r3 - 4]\nld [r4 + r5]\nhalt",
        FormatMode::Compact);
    auto i0 = *p.decodeAt(0);
    EXPECT_EQ(i0.op, Opcode::Ld);
    EXPECT_EQ(i0.imm, 0);
    auto i1 = *p.decodeAt(4);
    EXPECT_EQ(i1.imm, 4);
    auto i2 = *p.decodeAt(8);
    EXPECT_EQ(i2.imm, -4);
    auto i3 = *p.decodeAt(12);
    EXPECT_EQ(i3.op, Opcode::LdX);
    EXPECT_EQ(i3.rs1, 4);
    EXPECT_EQ(i3.rs2, 5);
}

TEST(Assembler, PbrForms)
{
    Program p = assemble(
        "x: pbr b1, 3, always\n pbr b2, 0, eqz, r5\n halt",
        FormatMode::Compact);
    auto i0 = *p.decodeAt(0);
    EXPECT_EQ(i0.op, Opcode::Pbr);
    EXPECT_EQ(i0.br, 1);
    EXPECT_EQ(i0.count, 3);
    EXPECT_EQ(i0.cond, isa::Cond::Always);
    auto i1 = *p.decodeAt(2);
    EXPECT_EQ(i1.cond, isa::Cond::Eqz);
    EXPECT_EQ(i1.rs1, 5);
}

TEST(AssemblerErrors, UndefinedSymbol)
{
    EXPECT_THROW(assemble("li r1, nothere\nhalt"), FatalError);
}

TEST(AssemblerErrors, RedefinedLabel)
{
    EXPECT_THROW(assemble("a: nop\na: nop"), FatalError);
}

TEST(AssemblerErrors, UnknownMnemonic)
{
    EXPECT_THROW(assemble("frobnicate r1"), FatalError);
}

TEST(AssemblerErrors, WrongOperandCount)
{
    EXPECT_THROW(assemble("add r1, r2"), FatalError);
    EXPECT_THROW(assemble("nop r1"), FatalError);
}

TEST(AssemblerErrors, PbrCountRange)
{
    EXPECT_THROW(assemble("pbr b0, 8, always"), FatalError);
}

TEST(AssemblerErrors, WordOutsideData)
{
    EXPECT_THROW(assemble(".word 1"), FatalError);
}

TEST(AssemblerErrors, InstructionInsideData)
{
    EXPECT_THROW(assemble(".data 0x100\nnop"), FatalError);
}

TEST(AssemblerErrors, AllErrorsReported)
{
    try {
        assemble("bogus1\nbogus2\nbogus3");
        FAIL() << "assemble succeeded";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("3 error(s)"), std::string::npos) << msg;
    }
}

TEST(Assembler, MissingFileIsFatal)
{
    EXPECT_THROW(assembleFile("/nonexistent/path.s"), FatalError);
}
