#include <gtest/gtest.h>

#include "common/log.hh"

using namespace pipesim;

TEST(Log, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
}

TEST(Log, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config: ", "x"), FatalError);
}

TEST(Log, MessagesAreComposed)
{
    try {
        panic("value=", 7, " name=", "abc");
        FAIL() << "panic returned";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: value=7 name=abc");
    }
}

TEST(Log, FatalMessagePrefix)
{
    try {
        fatal("oops");
        FAIL() << "fatal returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: oops");
    }
}

TEST(Log, AssertMacroPassesAndFails)
{
    EXPECT_NO_THROW(PIPESIM_ASSERT(1 + 1 == 2, "fine"));
    EXPECT_THROW(PIPESIM_ASSERT(1 + 1 == 3, "broken"), PanicError);
}

TEST(Log, PanicIsLogicErrorFatalIsRuntimeError)
{
    EXPECT_THROW(panic("x"), std::logic_error);
    EXPECT_THROW(fatal("x"), std::runtime_error);
}

TEST(Log, QuietFlagRoundTrip)
{
    const bool before = logQuiet();
    setLogQuiet(true);
    EXPECT_TRUE(logQuiet());
    EXPECT_NO_THROW(warn("suppressed"));
    EXPECT_NO_THROW(inform("suppressed"));
    setLogQuiet(before);
}
