#include <gtest/gtest.h>

#include <csignal>

#include "common/abort.hh"
#include "common/log.hh"

#include "sim/guard.hh"

using namespace pipesim;

TEST(Log, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
}

TEST(Log, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config: ", "x"), FatalError);
}

TEST(Log, MessagesAreComposed)
{
    try {
        panic("value=", 7, " name=", "abc");
        FAIL() << "panic returned";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: value=7 name=abc");
    }
}

TEST(Log, FatalMessagePrefix)
{
    try {
        fatal("oops");
        FAIL() << "fatal returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: oops");
    }
}

TEST(Log, AssertMacroPassesAndFails)
{
    EXPECT_NO_THROW(PIPESIM_ASSERT(1 + 1 == 2, "fine"));
    EXPECT_THROW(PIPESIM_ASSERT(1 + 1 == 3, "broken"), PanicError);
}

TEST(Log, PanicIsLogicErrorFatalIsRuntimeError)
{
    EXPECT_THROW(panic("x"), std::logic_error);
    EXPECT_THROW(fatal("x"), std::runtime_error);
}

TEST(Log, QuietFlagRoundTrip)
{
    const bool before = logQuiet();
    setLogQuiet(true);
    EXPECT_TRUE(logQuiet());
    EXPECT_NO_THROW(warn("suppressed"));
    EXPECT_NO_THROW(inform("suppressed"));
    setLogQuiet(before);
}

TEST(Abort, SimAbortIsRuntimeErrorWithPrefix)
{
    try {
        simAbort("wedged at cycle ", 42);
        FAIL() << "simAbort returned";
    } catch (const SimAbort &e) {
        EXPECT_STREQ(e.what(), "abort: wedged at cycle 42");
        EXPECT_FALSE(e.hasSnapshot());
    }
    EXPECT_THROW(simAbort("x"), std::runtime_error);
}

TEST(Abort, SnapshotRendersEverySection)
{
    MachineSnapshot snap;
    snap.cycle = 1234;
    snap.lastProgressCycle = 1000;
    snap.instructionsRetired = 55;
    snap.lastRetiredPcs = {0x100, 0x104};
    snap.pipelineState = "pipeline: running\n";
    snap.fetchState = "fetch stuff\n";
    snap.memoryState = "input bus: idle\n";
    const std::string text = snap.toString();
    EXPECT_NE(text.find("machine snapshot at cycle 1234"),
              std::string::npos);
    EXPECT_NE(text.find("0x100"), std::string::npos);
    EXPECT_NE(text.find("[pipeline]"), std::string::npos);
    EXPECT_NE(text.find("[fetch]"), std::string::npos);
    EXPECT_NE(text.find("[memory]"), std::string::npos);

    const SimAbort with("abort: x", snap);
    ASSERT_TRUE(with.hasSnapshot());
    EXPECT_EQ(with.snapshot().cycle, 1234u);
}

TEST(Guard, MapsTaxonomyToExitCodes)
{
    EXPECT_EQ(runGuardedMain([] { return 0; }), 0);
    EXPECT_EQ(runGuardedMain([] { return 7; }), 7);
    EXPECT_EQ(runGuardedMain([]() -> int { fatal("user error"); }), 1);
    EXPECT_EQ(runGuardedMain([]() -> int { simAbort("wedged"); }), 2);
    EXPECT_EQ(runGuardedMain([]() -> int { panic("bug"); }), 2);
    EXPECT_EQ(runGuardedMain(
                  []() -> int { throw std::runtime_error("other"); }),
              2);
    // Termination signals follow the shell convention (128 + signo),
    // so wrapper scripts can tell an interrupted sweep from a crash.
    EXPECT_EQ(runGuardedMain(
                  []() -> int { throw InterruptedError(SIGINT); }),
              130);
    EXPECT_EQ(runGuardedMain(
                  []() -> int { throw InterruptedError(SIGTERM); }),
              143);
}

TEST(Guard, PendingSignalFlagRoundTrip)
{
    clearPendingSignal();
    EXPECT_EQ(pendingSignal(), 0);
    EXPECT_NO_THROW(checkInterrupt());
    requestShutdown(SIGINT);
    EXPECT_EQ(pendingSignal(), SIGINT);
    try {
        checkInterrupt();
        FAIL() << "expected InterruptedError";
    } catch (const InterruptedError &e) {
        EXPECT_EQ(e.signalNumber(), SIGINT);
        EXPECT_NE(std::string(e.what()).find("SIGINT"),
                  std::string::npos);
    }
    clearPendingSignal();
    EXPECT_EQ(pendingSignal(), 0);
    EXPECT_NO_THROW(checkInterrupt());
}
