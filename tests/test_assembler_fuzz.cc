/**
 * Assembler robustness: malformed, truncated, or outright garbage
 * source must always fail with a FatalError carrying a line
 * diagnostic -- never a PanicError, another exception type, a crash,
 * or a hang.  The generator is seeded, so every run covers the same
 * inputs.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/log.hh"

#include "assembler/assembler.hh"

using namespace pipesim;

namespace
{

/**
 * Assemble @p src and check the robustness contract: success, or a
 * FatalError mentioning the source line.  Anything else fails the
 * test.
 */
void
assembleExpectingDiagnostic(const std::string &src)
{
    try {
        assembler::assemble(src);
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
            << "no line diagnostic for input:\n"
            << src << "\ngot: " << e.what();
    } catch (const std::exception &e) {
        FAIL() << "non-FatalError exception ("
               << typeid(e).name() << ": " << e.what()
               << ") for input:\n"
               << src;
    } catch (...) {
        FAIL() << "non-standard exception for input:\n" << src;
    }
}

} // namespace

TEST(AssemblerFuzz, HandCraftedMalformedInputs)
{
    const std::vector<std::string> inputs = {
        // Truncated operand lists.
        "add r1,",
        "add r1, r2,",
        "ld [",
        "ld [r1",
        "ld [r1 +",
        "ld [r1 + 4",
        "st [r1 -",
        "li r1,",
        "pbr b0,",
        // Wrong token kinds.
        "add 1, 2, 3",
        "li [r1 + 0], 4",
        "pbr r1, 0, always",
        "mov b0, b1",
        ", , ,",
        ": : :",
        "] add r1, r2, r3",
        "+ - + -",
        // Bad literals and stray characters.
        "li r1, 0x",
        "li r1, 12abc",
        "li r1, 99999999999999999999999999",
        "add r1, r2, r3 @",
        "mov r1, r2 $",
        "~",
        ".",
        // Directive abuse.
        ".word 1, 2",
        ".org",
        ".org -16",
        ".align 3",
        ".equ",
        ".data",
        ".space 4",
        ".bogus 7",
        ".float 1.2.3",
        // Unknown mnemonics / redefinitions / undefined symbols.
        "frobnicate r1, r2",
        "x: x: nop",
        "li r1, no_such_symbol\nhalt",
        // Instructions in the wrong segment.
        ".data 0x4000\nadd r1, r2, r3",
    };
    for (const auto &src : inputs)
        assembleExpectingDiagnostic(src);
}

TEST(AssemblerFuzz, SeededGarbageNeverPanics)
{
    // Deterministic pseudo-random byte soup over a token-ish charset:
    // dense in the lexer's special characters so it reaches deep into
    // the parser rather than dying on the first byte.
    const std::string charset =
        "abcdefghijklmnopqrstuvwxyz0123456789 \t,:[]+-.;#_rb\n";
    std::uint64_t state = 0x5eedULL;
    auto next = [&state]() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    for (int round = 0; round < 200; ++round) {
        std::string src;
        const unsigned len = 1 + unsigned(next() % 120);
        for (unsigned i = 0; i < len; ++i)
            src += charset[next() % charset.size()];
        assembleExpectingDiagnostic(src);
    }
}

TEST(AssemblerFuzz, TruncatedValidProgramAlwaysDiagnoses)
{
    // Every prefix of a valid program either assembles or reports a
    // FatalError -- truncation mid-token included.
    const std::string program = "    li   r1, 10\n"
                                "    lbr  b0, loop\n"
                                "loop:\n"
                                "    subi r1, r1, 1\n"
                                "    pbr  b0, 0, nez, r1\n"
                                "    halt\n";
    for (std::size_t cut = 0; cut <= program.size(); ++cut)
        assembleExpectingDiagnostic(program.substr(0, cut));
}

TEST(AssemblerFuzz, DiagnosticsCarryLineAndColumn)
{
    try {
        assembler::assemble("nop\nli r1, $\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("col"), std::string::npos) << msg;
    }
    try {
        assembler::assemble("add r1, r2, r3\nadd r1,\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    }
}
