#include <gtest/gtest.h>

#include "common/log.hh"

#include <string>

#include "queue/fixed_queue.hh"

using namespace pipesim;

TEST(FixedQueue, FifoOrder)
{
    FixedQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    q.push(4);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_EQ(q.pop(), 4);
    EXPECT_TRUE(q.empty());
}

TEST(FixedQueue, CapacityAndFull)
{
    FixedQueue<int> q(2);
    EXPECT_EQ(q.capacity(), 2u);
    EXPECT_EQ(q.freeSlots(), 2u);
    q.push(1);
    EXPECT_FALSE(q.full());
    q.push(2);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.freeSlots(), 0u);
}

TEST(FixedQueue, OverflowPanics)
{
    FixedQueue<int> q(1);
    q.push(1);
    EXPECT_THROW(q.push(2), PanicError);
}

TEST(FixedQueue, UnderflowPanics)
{
    FixedQueue<int> q(1);
    EXPECT_THROW(q.pop(), PanicError);
    EXPECT_THROW(q.front(), PanicError);
}

TEST(FixedQueue, FrontDoesNotPop)
{
    FixedQueue<std::string> q(2);
    q.push("a");
    EXPECT_EQ(q.front(), "a");
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.pop(), "a");
}

TEST(FixedQueue, RandomAccessFromHead)
{
    FixedQueue<int> q(4);
    q.push(10);
    q.push(20);
    q.push(30);
    EXPECT_EQ(q.at(0), 10);
    EXPECT_EQ(q.at(2), 30);
    EXPECT_THROW(q.at(3), PanicError);
}

TEST(FixedQueue, ClearEmpties)
{
    FixedQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(FixedQueue, ZeroCapacityRejected)
{
    EXPECT_THROW(FixedQueue<int>(0), PanicError);
}
