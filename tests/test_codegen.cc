#include <gtest/gtest.h>

#include "common/log.hh"

#include "codegen/codegen.hh"
#include "isa/fields.hh"
#include "sim/simulator.hh"
#include "workloads/reference.hh"

using namespace pipesim;
using namespace pipesim::codegen;
using isa::Opcode;

namespace
{

Kernel
simpleKernel(unsigned trips = 4)
{
    Kernel k;
    k.id = 1;
    k.name = "simple";
    k.tripCount = trips;
    k.arrays = {{"x", trips}, {"a", trips + 2}};
    k.scalars = {{"s", 0.5f, true}, {"m", 0.25f, false}};
    k.body = {assign({"x", 1, 0},
                     add(mul(scalar("s"), ref("a", 1)),
                         mul(scalar("m"), ref("a", 0))))};
    return k;
}

/** Decode a generated program into a linear instruction list. */
std::vector<isa::Instruction>
decodeAll(const Program &p)
{
    std::vector<isa::Instruction> out;
    Addr a = p.codeBase();
    while (p.inCode(a)) {
        const auto inst = *p.decodeAt(a);
        out.push_back(inst);
        a += inst.sizeBytes();
    }
    return out;
}

} // namespace

TEST(CodeGen, ProgramStartsWithZeroRegAndEndsWithHalt)
{
    CodeGenerator gen;
    gen.emitKernel(simpleKernel());
    Program p = gen.finish();
    const auto insts = decodeAll(p);
    ASSERT_GE(insts.size(), 2u);
    EXPECT_EQ(insts.front().op, Opcode::Li);
    EXPECT_EQ(insts.front().rd, 0);
    EXPECT_EQ(insts.front().imm, 0);
    EXPECT_EQ(insts.back().op, Opcode::Halt);
}

TEST(CodeGen, InnerLoopHasPbrWithDelaySlots)
{
    CodeGenerator gen;
    const auto info = gen.emitKernel(simpleKernel());
    Program p = gen.finish();

    // Find the inner-loop PBR and check the delay-slot count matches
    // the reported value and that the slots follow it.
    unsigned pbrs = 0;
    Addr a = info.innerLoopStart;
    std::optional<isa::Instruction> pbr;
    while (a < info.innerLoopStart + info.innerLoopBytes) {
        const auto inst = *p.decodeAt(a);
        if (inst.op == Opcode::Pbr) {
            ++pbrs;
            pbr = inst;
        }
        a += inst.sizeBytes();
    }
    EXPECT_EQ(pbrs, 1u);
    ASSERT_TRUE(pbr);
    EXPECT_EQ(pbr->count, info.delaySlots);
    EXPECT_GT(info.delaySlots, 0u);
    EXPECT_LE(info.delaySlots, 7u);
    EXPECT_EQ(pbr->cond, isa::Cond::Nez);
}

TEST(CodeGen, LbrTargetsInnerLoopStart)
{
    CodeGenerator gen;
    const auto info = gen.emitKernel(simpleKernel());
    Program p = gen.finish();
    bool found = false;
    for (Addr a = p.codeBase(); p.inCode(a);) {
        const auto inst = *p.decodeAt(a);
        if (inst.op == Opcode::Lbr &&
            Addr(inst.imm) == info.innerLoopStart)
            found = true;
        a += inst.sizeBytes();
    }
    EXPECT_TRUE(found);
}

TEST(CodeGen, LdqFifoDisciplineHolds)
{
    // Static check of the fundamental queue discipline: walking the
    // generated code, the number of r7 pops never exceeds the number
    // of loads issued, and all loads are eventually consumed within
    // the loop body.
    CodeGenerator gen;
    const auto info = gen.emitKernel(simpleKernel());
    Program p = gen.finish();
    long outstanding = 0;
    for (Addr a = info.innerLoopStart;
         a < info.innerLoopStart + info.innerLoopBytes;) {
        const auto inst = *p.decodeAt(a);
        if (inst.isLoad())
            ++outstanding;
        outstanding -= long(inst.ldqPops());
        EXPECT_GE(outstanding, 0) << "pop before load at " << a;
        a += inst.sizeBytes();
    }
    EXPECT_EQ(outstanding, 0) << "loads never consumed";
}

TEST(CodeGen, LdqWindowBoundsOutstandingLoads)
{
    for (unsigned window : {1u, 2u, 4u, 7u}) {
        CodeGenOptions opts;
        opts.ldqWindow = window;
        CodeGenerator gen(opts);
        const auto info = gen.emitKernel(simpleKernel());
        Program p = gen.finish();
        long outstanding = 0;
        long max_outstanding = 0;
        for (Addr a = info.innerLoopStart;
             a < info.innerLoopStart + info.innerLoopBytes;) {
            const auto inst = *p.decodeAt(a);
            if (inst.isLoad())
                ++outstanding;
            outstanding -= long(inst.ldqPops());
            max_outstanding = std::max(max_outstanding, outstanding);
            a += inst.sizeBytes();
        }
        EXPECT_LE(max_outstanding, long(window)) << "window " << window;
    }
}

TEST(CodeGen, StoresPairWithDataPushes)
{
    // Every SAQ push must be matched by exactly one SDQ push in
    // program order (st then a r7-destination op), kernel-wide.
    CodeGenerator gen;
    gen.emitKernel(simpleKernel());
    Program p = gen.finish();
    long pending_addrs = 0;
    for (Addr a = p.codeBase(); p.inCode(a);) {
        const auto inst = *p.decodeAt(a);
        if (inst.isStore())
            ++pending_addrs;
        if (inst.pushesSdq())
            --pending_addrs;
        EXPECT_GE(pending_addrs, -1);
        a += inst.sizeBytes();
    }
    EXPECT_EQ(pending_addrs, 0);
}

TEST(CodeGen, OuterLoopRepeatsInnerLoop)
{
    Kernel k = simpleKernel(3);
    k.outerReps = 4;
    CodeGenerator gen;
    const auto info = gen.emitKernel(k);
    Program p = gen.finish();
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    Simulator sim(cfg, p);
    sim.run();
    std::string diag;
    EXPECT_TRUE(workloads::verifyAgainstReference(sim.dataMemory(), k,
                                                  info, &diag))
        << diag;
    // Outer loop multiplies the PBR count: 3 trips x 4 reps.
    EXPECT_EQ(sim.stats().counterValue("cpu.pbr_taken") +
                  sim.stats().counterValue("cpu.pbr_not_taken"),
              3u * 4u + 4u);
}

TEST(CodeGen, CompactModeShrinksCode)
{
    CodeGenOptions fixed;
    fixed.mode = isa::FormatMode::Fixed32;
    CodeGenOptions compact;
    compact.mode = isa::FormatMode::Compact;

    CodeGenerator g1(fixed);
    g1.emitKernel(simpleKernel());
    const auto size_fixed = g1.finish().codeSize();

    CodeGenerator g2(compact);
    g2.emitKernel(simpleKernel());
    const auto size_compact = g2.finish().codeSize();

    EXPECT_LT(size_compact, size_fixed);
}

TEST(CodeGen, CompactModeStillComputesCorrectly)
{
    CodeGenOptions opts;
    opts.mode = isa::FormatMode::Compact;
    CodeGenerator gen(opts);
    Kernel k = simpleKernel(6);
    const auto info = gen.emitKernel(k);
    Program p = gen.finish();
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    Simulator sim(cfg, p);
    sim.run();
    std::string diag;
    EXPECT_TRUE(workloads::verifyAgainstReference(sim.dataMemory(), k,
                                                  info, &diag))
        << diag;
}

TEST(CodeGen, MultipleKernelsShareOneProgram)
{
    CodeGenerator gen;
    Kernel k1 = simpleKernel();
    Kernel k2 = simpleKernel();
    k2.id = 2;
    k2.name = "simple2";
    const auto i1 = gen.emitKernel(k1);
    const auto i2 = gen.emitKernel(k2);
    EXPECT_LT(i1.kernelStart, i2.kernelStart);
    // Arrays must not overlap.
    EXPECT_NE(i1.arrayAddrs.at("x"), i2.arrayAddrs.at("x"));
    Program p = gen.finish();
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("8-8", 64);
    Simulator sim(cfg, p);
    sim.run();
    std::string diag;
    EXPECT_TRUE(
        workloads::verifyAgainstReference(sim.dataMemory(), k1, i1, &diag))
        << diag;
    EXPECT_TRUE(
        workloads::verifyAgainstReference(sim.dataMemory(), k2, i2, &diag))
        << diag;
}

TEST(CodeGen, TooManyStrideClassesIsFatal)
{
    Kernel k;
    k.id = 1;
    k.name = "strides";
    k.tripCount = 2;
    k.arrays = {{"a", 20}};
    k.body = {assign({"a", 1, 0},
                     add(add(ref("a", 2, 0), ref("a", 3, 0)),
                         ref("a", 4, 0)))};
    CodeGenerator gen;
    EXPECT_THROW(gen.emitKernel(k), FatalError);
}

TEST(CodeGen, BadTripCountIsFatal)
{
    Kernel k = simpleKernel();
    k.tripCount = 0;
    CodeGenerator gen;
    EXPECT_THROW(gen.emitKernel(k), FatalError);
}

TEST(CodeGen, InnerLoopBytesMatchesReportedRange)
{
    CodeGenerator gen;
    const auto info = gen.emitKernel(simpleKernel());
    EXPECT_GT(info.innerLoopBytes, 0u);
    EXPECT_EQ(info.innerLoopBytes % 4, 0u); // fixed-32 instructions
}
