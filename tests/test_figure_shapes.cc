/**
 * Figure-shape regression tests: the qualitative claims recorded in
 * EXPERIMENTS.md, asserted at reduced scale so any change that breaks
 * a reproduced result fails CI rather than silently shifting a curve.
 */

#include <gtest/gtest.h>

#include "common/log.hh"

#include "sim/experiment.hh"
#include "workloads/benchmark_program.hh"

using namespace pipesim;

namespace
{

const workloads::Benchmark &
bench()
{
    static const auto b = workloads::buildLivermoreBenchmark(0.15);
    return b;
}

std::uint64_t
cyclesAt(unsigned access, unsigned bus, bool pipelined,
         const std::string &strategy, unsigned cache)
{
    SweepSpec spec;
    spec.mem.accessTime = access;
    spec.mem.busWidthBytes = bus;
    spec.mem.pipelined = pipelined;
    const SimConfig cfg = makeSweepConfig(spec, strategy, cache);
    return runSimulation(cfg, bench().program).totalCycles;
}

} // namespace

TEST(FigureShapes, Fig4KneeFlattensForConventional)
{
    // Figure 4: steep improvement up to the knee, flattening after.
    const auto c16 = cyclesAt(1, 8, false, "conv", 16);
    const auto c256 = cyclesAt(1, 8, false, "conv", 256);
    const auto c1024 = cyclesAt(1, 8, false, "conv", 1024);
    EXPECT_GT(double(c16 - c256), 2.0 * double(c256 - c1024));
}

TEST(FigureShapes, Fig4SmallPipeCacheNearLargeConventional)
{
    // "using a 16 or 32 byte cache with an IQ and IQB one can achieve
    // close to the performance of a 512 byte cache" (bus 8, access 1).
    const auto pipe16 = cyclesAt(1, 8, false, "16-16", 16);
    const auto conv512 = cyclesAt(1, 8, false, "conv", 512);
    EXPECT_LT(double(pipe16), 1.10 * double(conv512));
}

TEST(FigureShapes, Fig5PipeAlwaysWinsAtSlowMemory)
{
    for (unsigned cache : {32u, 128u, 512u}) {
        const auto conv = cyclesAt(6, 8, false, "conv", cache);
        for (const char *s : {"8-8", "16-16", "16-32", "32-32"})
            EXPECT_LT(cyclesAt(6, 8, false, s, cache), conv)
                << s << " @" << cache;
    }
}

TEST(FigureShapes, Fig5HeadlineTwoXAtSmallCacheNarrowBus)
{
    const auto conv = cyclesAt(6, 4, false, "conv", 16);
    const auto pipe = cyclesAt(6, 4, false, "16-16", 16);
    EXPECT_GT(double(conv) / double(pipe), 1.8);
}

TEST(FigureShapes, Fig5PipeLessBusSensitiveThanConventional)
{
    const double conv_ratio =
        double(cyclesAt(6, 4, false, "conv", 16)) /
        double(cyclesAt(6, 8, false, "conv", 16));
    const double pipe_ratio =
        double(cyclesAt(6, 4, false, "16-16", 16)) /
        double(cyclesAt(6, 8, false, "16-16", 16));
    EXPECT_GT(conv_ratio, pipe_ratio + 0.2);
}

TEST(FigureShapes, Fig6PipeliningShiftsCurvesDown)
{
    for (const char *s : {"conv", "16-16", "32-32"}) {
        const auto non_piped = cyclesAt(6, 8, false, s, 128);
        const auto piped = cyclesAt(6, 8, true, s, 128);
        EXPECT_LT(piped, non_piped) << s;
    }
}

TEST(FigureShapes, Fig6LineSizePreferenceReverses)
{
    // Figure 4a (access 1, bus 4): 8-byte lines beat 32-byte lines at
    // small caches.  Figure 6b (access 6, bus 8, pipelined): the
    // reverse.
    const auto small_line_fast = cyclesAt(1, 4, false, "8-8", 32);
    const auto big_line_fast = cyclesAt(1, 4, false, "32-32", 32);
    EXPECT_LT(small_line_fast, big_line_fast);

    const auto small_line_piped = cyclesAt(6, 8, true, "8-8", 64);
    const auto big_line_piped = cyclesAt(6, 8, true, "32-32", 64);
    EXPECT_LT(big_line_piped, small_line_piped);
}

TEST(FigureShapes, CurvesConvergeAtLargeCaches)
{
    // "the performance of the conventional cache and the various PIPE
    // configurations converge as cache size increases."
    std::uint64_t lo = std::uint64_t(-1);
    std::uint64_t hi = 0;
    for (const char *s : {"conv", "8-8", "16-16", "16-32", "32-32"}) {
        const auto c = cyclesAt(6, 8, false, s, 1024);
        lo = std::min(lo, c);
        hi = std::max(hi, c);
    }
    // Reduced scale inflates cold-start differences; full scale
    // converges to <1% (EXPERIMENTS.md).
    EXPECT_LT(double(hi) / double(lo), 1.10);
}

TEST(FigureShapes, TibFlatAcrossSizesWhileCachesImprove)
{
    const auto tib16 = cyclesAt(6, 8, false, "tib", 16);
    const auto tib512 = cyclesAt(6, 8, false, "tib", 512);
    EXPECT_NEAR(double(tib512) / double(tib16), 1.0, 0.05);
    const auto conv16 = cyclesAt(6, 8, false, "conv", 16);
    const auto conv512 = cyclesAt(6, 8, false, "conv", 512);
    EXPECT_LT(double(conv512), 0.8 * double(conv16));
    // And the small TIB beats the small conventional cache (§2.1).
    EXPECT_LT(tib16, conv16);
}
