/**
 * The pipesim-serve subsystem (src/server/): protocol validation,
 * fair scheduling, and full request/event-stream sessions driven
 * over a socketpair with no daemon process.
 *
 * The load-bearing properties:
 *
 *  - requests are validated before anything is scheduled — garbage
 *    never occupies the worker pool;
 *  - events stream in enumeration order and the table event is
 *    byte-identical for any worker count (the determinism contract
 *    every sweep in this repo honours);
 *  - a second identical request against a store-backed daemon is
 *    served entirely from the journal: every result event carries
 *    cached:true and zero points simulate;
 *  - the FairScheduler round-robins across batches, so a small
 *    request finishes while a big earlier one is still running;
 *  - a client disconnect cancels in-flight points cooperatively —
 *    the session returns instead of simulating for a closed socket.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "common/log.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "server/protocol.hh"
#include "server/scheduler.hh"
#include "server/session.hh"
#include "sim/guard.hh"
#include "store/result_store.hh"

using namespace pipesim;
using namespace pipesim::server;

namespace
{

struct ScratchDir
{
    explicit ScratchDir(std::string p) : path(std::move(p))
    {
        std::filesystem::remove_all(path);
    }
    ~ScratchDir() { std::filesystem::remove_all(path); }
    std::string path;
};

/** A fast four-point request over the tiny halt-terminated program. */
const char *tinyRequest =
    R"({"type":"sweep","id":"t","asm":"    li r1, 1\n    li r2, 2\n    add r3, r1, r2\n    halt\n",)"
    R"("cache_sizes":[64,128],"strategies":["conv","16-16"]})";

/** Drive one full session over a socketpair; returns the events. */
std::vector<std::string>
serveOnce(ServerContext &ctx, const std::string &request)
{
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::thread session([&ctx, fd = fds[0]] {
        handleConnection(fd, ctx);
        ::close(fd);
    });
    const std::string line = request + "\n";
    EXPECT_EQ(::send(fds[1], line.data(), line.size(), MSG_NOSIGNAL),
              ssize_t(line.size()));
    std::string stream;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::read(fds[1], buf, sizeof(buf));
        if (n <= 0)
            break;
        stream.append(buf, std::size_t(n));
    }
    ::close(fds[1]);
    session.join();

    std::vector<std::string> events;
    std::size_t start = 0, nl;
    while ((nl = stream.find('\n', start)) != std::string::npos) {
        events.push_back(stream.substr(start, nl - start));
        start = nl + 1;
    }
    return events;
}

std::string
eventType(const std::string &line)
{
    const auto doc = obs::parseJson(line);
    if (!doc || !doc->isObject())
        return "";
    const obs::JsonValue *ev = doc->find("event");
    return ev ? ev->string : "";
}

/** The deterministic stream: progress and stats carry host state. */
std::vector<std::string>
deterministicEvents(const std::vector<std::string> &events)
{
    std::vector<std::string> out;
    for (const auto &e : events) {
        const std::string type = eventType(e);
        if (type != "progress" && type != "stats")
            out.push_back(e);
    }
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Protocol validation.
// ---------------------------------------------------------------------

TEST(ServerProtocolTest, ParsesAFullRequest)
{
    const SweepRequest req = parseSweepRequest(
        R"({"type":"sweep","id":"r1","workload":"livermore",)"
        R"("scale":0.25,"cache_sizes":[64,256],)"
        R"("strategies":["conv","16-16","32-32"],)"
        R"("mem":{"access_time":6,"bus_width":8,"pipelined":true},)"
        R"("point_retries":2,"retry_backoff_ms":5,)"
        R"("point_deadline_ms":1000,)"
        R"("fault":{"kinds":"grant","seed":7,"rate":0.5}})");
    EXPECT_EQ(req.id, "r1");
    EXPECT_EQ(req.workload, "livermore");
    EXPECT_DOUBLE_EQ(req.scale, 0.25);
    EXPECT_EQ(req.spec.cacheSizes, (std::vector<unsigned>{64, 256}));
    EXPECT_EQ(req.spec.strategies,
              (std::vector<std::string>{"conv", "16-16", "32-32"}));
    EXPECT_EQ(req.spec.mem.accessTime, 6u);
    EXPECT_EQ(req.spec.mem.busWidthBytes, 8u);
    EXPECT_TRUE(req.spec.mem.pipelined);
    EXPECT_EQ(req.spec.pointRetries, 2u);
    EXPECT_EQ(req.spec.retryBackoffMs, 5u);
    EXPECT_EQ(req.spec.pointDeadlineMs, 1000u);
    EXPECT_EQ(req.spec.fault.seed, 7u);
    EXPECT_DOUBLE_EQ(req.spec.fault.rate, 0.5);
    // The daemon streams ERR cells; it never fails a whole request
    // for one bad point.
    EXPECT_EQ(req.spec.failurePolicy,
              SweepFailurePolicy::CollectAndContinue);
}

TEST(ServerProtocolTest, RejectsMalformedRequests)
{
    // Each entry: a broken request and a fragment its error names.
    const std::vector<std::pair<std::string, std::string>> cases = {
        {"not json at all", "not valid JSON"},
        {R"([1,2,3])", "must be a JSON object"},
        {R"({"type":"shrug","id":"x"})", "'type'"},
        {R"({"type":"sweep"})", "id must be non-empty"},
        {R"({"type":"sweep","id":"x","workload":"doom"})",
         "'workload'"},
        {R"({"type":"sweep","id":"x","workload":"branchy",)"
         R"("asm":"halt"})",
         "mutually exclusive"},
        {R"({"type":"sweep","id":"x","cache_sizes":[]})",
         "cache_sizes"},
        {R"({"type":"sweep","id":"x","cache_sizes":[0]})",
         "cache_sizes"},
        {R"({"type":"sweep","id":"x","strategies":[""]})",
         "strategies"},
        {R"({"type":"sweep","id":"x","engine":"trace"})",
         "trace_file"},
        {R"({"type":"sweep","id":"x","engine":"warp"})", "'engine'"},
        {R"({"type":"sweep","id":"x","engine":"trace",)"
         R"("trace_file":"t.pipetrc","fault":{"kinds":"grant"}})",
         "cannot inject faults"},
        {R"({"type":"sweep","id":"x","scale":-1})", "'scale'"},
        {R"({"type":"sweep","id":"x","point_retries":99})",
         "point_retries"},
    };
    for (const auto &[request, fragment] : cases) {
        try {
            parseSweepRequest(request);
            FAIL() << "accepted: " << request;
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find(fragment),
                      std::string::npos)
                << "request: " << request << "\nerror: " << e.what();
        }
    }
}

TEST(ServerProtocolTest, RejectsOversizedGridsBeforeScheduling)
{
    std::string big = R"({"type":"sweep","id":"x","cache_sizes":[)";
    for (int i = 0; i < 200; ++i)
        big += (i ? "," : "") + std::to_string(16 + i);
    big += R"(],"strategies":[)";
    for (int i = 0; i < 60; ++i)
        big += std::string(i ? "," : "") + "\"s" + std::to_string(i) +
               "\"";
    big += "]}";
    EXPECT_THROW(parseSweepRequest(big), FatalError);
}

// ---------------------------------------------------------------------
// Fair scheduling.
// ---------------------------------------------------------------------

TEST(FairSchedulerTest, SmallBatchIsNotStarvedByABigOne)
{
    FairScheduler sched(2);
    std::atomic<std::size_t> bigDone{0};
    std::vector<std::function<void()>> big;
    for (int i = 0; i < 16; ++i)
        big.push_back([&bigDone] {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            bigDone.fetch_add(1);
        });
    auto bigBatch = sched.submit(std::move(big));

    std::vector<std::function<void()>> small;
    for (int i = 0; i < 2; ++i)
        small.push_back([] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        });
    auto smallBatch = sched.submit(std::move(small));

    ASSERT_TRUE(smallBatch->waitFor(std::chrono::seconds(30)));
    // Round-robin: the small batch finished while most of the big
    // one was still queued (strict FIFO would run all 16 big tasks
    // first on both workers).
    EXPECT_LT(bigDone.load(), 16u);
    bigBatch->wait();
    EXPECT_EQ(bigDone.load(), 16u);
}

TEST(FairSchedulerTest, CancelDropsQueuedTasksButFinishesInFlight)
{
    FairScheduler sched(1);
    std::mutex mu;
    std::condition_variable cv;
    bool release = false, started = false;
    std::atomic<std::size_t> ran{0};
    std::vector<std::function<void()>> tasks;
    tasks.push_back([&] {
        {
            std::lock_guard<std::mutex> lock(mu);
            started = true;
            cv.notify_all();
        }
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
        ran.fetch_add(1);
    });
    for (int i = 0; i < 8; ++i)
        tasks.push_back([&ran] { ran.fetch_add(1); });
    auto batch = sched.submit(std::move(tasks));
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return started; });
    }
    batch->cancel();
    {
        std::lock_guard<std::mutex> lock(mu);
        release = true;
        cv.notify_all();
    }
    batch->wait();
    EXPECT_TRUE(batch->cancelled());
    EXPECT_EQ(batch->total(), 9u);
    EXPECT_EQ(batch->settled(), 9u);
    // Only the in-flight task ran; the queued eight were dropped.
    EXPECT_EQ(ran.load(), 1u);
}

TEST(FairSchedulerTest, EmptyBatchIsImmediatelyDone)
{
    FairScheduler sched(1);
    auto batch = sched.submit({});
    EXPECT_TRUE(batch->done());
    batch->wait();
}

// ---------------------------------------------------------------------
// Full sessions over a socketpair.
// ---------------------------------------------------------------------

TEST(ServerSessionTest, GarbageRequestYieldsOneErrorEvent)
{
    FairScheduler sched(1);
    ServerContext ctx{sched, nullptr};
    const auto events = serveOnce(ctx, "this is not json");
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(eventType(events[0]), "error");
    EXPECT_NE(events[0].find("not valid JSON"), std::string::npos);
}

TEST(ServerSessionTest, StreamsResultsInEnumerationOrder)
{
    FairScheduler sched(4);
    ServerContext ctx{sched, nullptr};
    const auto events = serveOnce(ctx, tinyRequest);
    ASSERT_GE(events.size(), 7u) << "expected accepted + 4 results + "
                                    "table + stats";
    EXPECT_EQ(eventType(events.front()), "accepted");
    // Enumeration order is (size, strategy): conv:64, 16-16:64,
    // conv:128, 16-16:128 — regardless of completion order.
    const std::vector<std::pair<std::string, std::uint64_t>> expected =
        {{"conv", 64}, {"16-16", 64}, {"conv", 128}, {"16-16", 128}};
    std::size_t at = 0;
    for (const auto &e : events) {
        if (eventType(e) != "result")
            continue;
        ASSERT_LT(at, expected.size());
        const auto doc = obs::parseJson(e);
        ASSERT_TRUE(doc.has_value());
        EXPECT_EQ(doc->find("strategy")->string, expected[at].first);
        EXPECT_EQ(std::uint64_t(doc->find("cache_bytes")->number),
                  expected[at].second);
        EXPECT_GT(doc->find("cycles")->number, 0.0);
        ++at;
    }
    EXPECT_EQ(at, expected.size());
    EXPECT_EQ(eventType(events[events.size() - 2]), "table");
    EXPECT_EQ(eventType(events.back()), "stats");
}

TEST(ServerSessionTest, EventStreamIsByteIdenticalForAnyWorkerCount)
{
    FairScheduler serial(1), parallel(8);
    ServerContext ctx1{serial, nullptr};
    ServerContext ctx8{parallel, nullptr};
    const auto events1 = deterministicEvents(serveOnce(ctx1, tinyRequest));
    const auto events8 = deterministicEvents(serveOnce(ctx8, tinyRequest));
    ASSERT_EQ(events1.size(), events8.size());
    for (std::size_t i = 0; i < events1.size(); ++i)
        EXPECT_EQ(events1[i], events8[i]) << "event " << i;
}

TEST(ServerSessionTest, SecondIdenticalRequestIsServedFromTheStore)
{
    ScratchDir dir("server_test_store");
    auto &reg = obs::MetricsRegistry::instance();
    store::ResultStore store(dir.path);
    FairScheduler sched(2);
    ServerContext ctx{sched, &store};

    const auto first = serveOnce(ctx, tinyRequest);
    const std::uint64_t hitsAfterFirst =
        reg.counter("store.hits").value();
    const auto second = serveOnce(ctx, tinyRequest);

    // Every result of the second request came from the journal...
    std::size_t results = 0;
    for (const auto &e : second) {
        if (eventType(e) != "result")
            continue;
        ++results;
        EXPECT_NE(e.find("\"cached\":true"), std::string::npos) << e;
    }
    EXPECT_EQ(results, 4u);
    // ...nothing simulated...
    const auto statsDoc = obs::parseJson(second.back());
    ASSERT_TRUE(statsDoc.has_value());
    EXPECT_EQ(statsDoc->find("simulated")->number, 0.0);
    EXPECT_EQ(statsDoc->find("cached")->number, 4.0);
    EXPECT_EQ(reg.counter("store.hits").value(), hitsAfterFirst + 4);
    // ...and the accepted event announced the full cache up front.
    const auto accepted = obs::parseJson(second.front());
    ASSERT_TRUE(accepted.has_value());
    EXPECT_EQ(accepted->find("cached")->number, 4.0);

    // The table events are byte-identical.
    std::string table1, table2;
    for (const auto &e : first)
        if (eventType(e) == "table")
            table1 = e;
    for (const auto &e : second)
        if (eventType(e) == "table")
            table2 = e;
    ASSERT_FALSE(table1.empty());
    EXPECT_EQ(table1, table2);
}

TEST(ServerSessionTest, DisconnectCancelsInFlightPoints)
{
    // An infinite loop that keeps committing instructions: neither
    // the progress watchdog nor maxCycles will stop it any time
    // soon — only the cooperative cancel can.
    const std::string request =
        R"({"type":"sweep","id":"gone",)"
        R"("asm":"    lbr b0, loop\nloop:\n    add r1, r1, r1\n)"
        R"(    pbr b0, 1, always\n    nop\n",)"
        R"("cache_sizes":[64],"strategies":["16-16"]})";

    FairScheduler sched(1);
    ServerContext ctx{sched, nullptr};
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    std::atomic<bool> returned{false};
    std::thread session([&, fd = fds[0]] {
        handleConnection(fd, ctx);
        ::close(fd);
        returned.store(true);
    });
    const std::string line = request + "\n";
    ASSERT_EQ(::send(fds[1], line.data(), line.size(), MSG_NOSIGNAL),
              ssize_t(line.size()));
    // Wait for the accepted event so the point is actually running,
    // then vanish.
    char buf[512];
    ASSERT_GT(::read(fds[1], buf, sizeof(buf)), 0);
    ::close(fds[1]);

    // The session must notice (next heartbeat, ~1 s), cancel the
    // point through its control flag, and return.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!returned.load() &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(returned.load())
        << "session still simulating for a closed socket";
    session.join();
}
