#include <gtest/gtest.h>

#include "common/log.hh"

#include "mem/external_memory.hh"

using namespace pipesim;

namespace
{

MemRequest
load(Addr addr, unsigned bytes = 4)
{
    MemRequest req;
    req.addr = addr;
    req.bytes = bytes;
    req.cls = ReqClass::Data;
    return req;
}

MemRequest
store(Addr addr, bool *completed = nullptr)
{
    MemRequest req;
    req.addr = addr;
    req.bytes = 4;
    req.isStore = true;
    if (completed)
        req.onComplete = [completed]() { *completed = true; };
    return req;
}

} // namespace

TEST(ExternalMemoryTest, LoadReadyAfterAccessTime)
{
    ExternalMemory mem(3, false);
    mem.accept(load(0x100), 10);
    EXPECT_FALSE(mem.peekReady(12));
    auto ready = mem.peekReady(13);
    ASSERT_TRUE(ready);
    EXPECT_EQ(ready->addr, 0x100u);
}

TEST(ExternalMemoryTest, NonPipelinedBusyUntilDelivered)
{
    ExternalMemory mem(1, false);
    EXPECT_TRUE(mem.canAccept());
    mem.accept(load(0x0), 0);
    EXPECT_FALSE(mem.canAccept());
    mem.popReady(1);
    // Response handed to the bus; memory busy while transferring.
    mem.setTransferring(true);
    EXPECT_FALSE(mem.canAccept());
    mem.setTransferring(false);
    EXPECT_TRUE(mem.canAccept());
}

TEST(ExternalMemoryTest, PipelinedAcceptsWhileBusy)
{
    ExternalMemory mem(6, true);
    mem.accept(load(0x0), 0);
    EXPECT_TRUE(mem.canAccept());
    mem.accept(load(0x10), 1);
    EXPECT_EQ(mem.inflightCount(), 2u);
    // Responses leave in acceptance order.
    auto first = mem.peekReady(7);
    ASSERT_TRUE(first);
    EXPECT_EQ(first->addr, 0x0u);
    mem.popReady(7);
    auto second = mem.peekReady(7);
    ASSERT_TRUE(second);
    EXPECT_EQ(second->addr, 0x10u);
}

TEST(ExternalMemoryTest, StoresRetireSilently)
{
    ExternalMemory mem(2, false);
    bool completed = false;
    mem.accept(store(0x40, &completed), 5);
    mem.tick(6);
    EXPECT_FALSE(completed);
    mem.tick(7);
    EXPECT_TRUE(completed);
    EXPECT_TRUE(mem.idle());
    // A store never becomes a bus response.
    EXPECT_FALSE(mem.peekReady(10));
}

TEST(ExternalMemoryTest, StoreBlocksNonPipelinedUntilDone)
{
    ExternalMemory mem(3, false);
    mem.accept(store(0x40), 0);
    EXPECT_FALSE(mem.canAccept());
    mem.tick(2);
    EXPECT_FALSE(mem.canAccept());
    mem.tick(3);
    EXPECT_TRUE(mem.canAccept());
}

TEST(ExternalMemoryTest, AcceptWhileBusyPanics)
{
    ExternalMemory mem(2, false);
    mem.accept(load(0), 0);
    EXPECT_THROW(mem.accept(load(4), 1), PanicError);
}

TEST(ExternalMemoryTest, PopWithNothingReadyPanics)
{
    ExternalMemory mem(1, false);
    EXPECT_THROW(mem.popReady(0), PanicError);
}

TEST(ExternalMemoryTest, ZeroAccessTimeRejected)
{
    EXPECT_THROW(ExternalMemory(0, false), PanicError);
}

TEST(ExternalMemoryTest, StatsCountReadsAndWrites)
{
    ExternalMemory mem(1, true);
    StatGroup stats;
    mem.regStats(stats, "m");
    mem.accept(load(0), 0);
    mem.accept(store(4), 0);
    EXPECT_EQ(stats.counterValue("m.reads"), 1u);
    EXPECT_EQ(stats.counterValue("m.writes"), 1u);
}
