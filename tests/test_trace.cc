#include <gtest/gtest.h>

#include "common/log.hh"

#include <sstream>

#include "assembler/assembler.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

using namespace pipesim;

namespace
{

const char *tinyProgram = R"(
    li r1, 5
    addi r1, r1, 1
    halt
)";

} // namespace

TEST(TraceTest, InstructionTracerEmitsOneLinePerRetire)
{
    Program p = assembler::assemble(tinyProgram);
    SimConfig cfg;
    Simulator sim(cfg, p);
    std::ostringstream out;
    InstructionTracer tracer(out);
    tracer.attach(sim.probes());
    sim.run();
    EXPECT_EQ(tracer.lines(), 3u);
    const std::string text = out.str();
    EXPECT_NE(text.find("li r1, 5"), std::string::npos);
    EXPECT_NE(text.find("addi r1, r1, 1"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
}

TEST(TraceTest, RetireRecorderCapturesPcsInOrder)
{
    Program p = assembler::assemble(tinyProgram);
    SimConfig cfg;
    Simulator sim(cfg, p);
    RetireRecorder rec;
    rec.attach(sim.probes());
    sim.run();
    ASSERT_EQ(rec.records().size(), 3u);
    EXPECT_EQ(rec.records()[0].pc, 0u);
    EXPECT_EQ(rec.records()[1].pc, 4u);
    EXPECT_EQ(rec.records()[2].pc, 8u);
    EXPECT_EQ(rec.records()[2].op, isa::Opcode::Halt);
    // Cycles strictly increase (one issue per cycle at most).
    EXPECT_LT(rec.records()[0].cycle, rec.records()[1].cycle);
    EXPECT_LT(rec.records()[1].cycle, rec.records()[2].cycle);
}

TEST(TraceTest, BackToBackIssueNearOneCyclePer)
{
    // On a fast supply, independent instructions issue nearly every
    // cycle; allow for cold-start fill bubbles at line boundaries.
    Program p = assembler::assemble("nop\nnop\nnop\nnop\nhalt");
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    Simulator sim(cfg, p);
    RetireRecorder rec;
    rec.attach(sim.probes());
    sim.run();
    const auto &r = rec.records();
    ASSERT_EQ(r.size(), 5u);
    for (std::size_t i = 1; i < r.size(); ++i)
        EXPECT_GE(r[i].cycle, r[i - 1].cycle + 1) << i;
    // Total span bounded: no pathological stalls.
    EXPECT_LE(r.back().cycle - r.front().cycle, 10u);
}
