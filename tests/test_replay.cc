/**
 * The trace-replay validation harness (docs/trace_replay.md): exact
 * replay must be bit-identical to the cycle simulator — same cycle
 * count, same instruction count, same value for every shared counter
 * — for every Livermore sweep point, and sampled replay must land
 * within its stated error bound.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/abort.hh"
#include "common/log.hh"
#include "replay/capture.hh"
#include "replay/replay_engine.hh"
#include "replay/trace_format.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "sim/standard_flags.hh"
#include "workloads/benchmark_program.hh"
#include "workloads/synthetic.hh"

using namespace pipesim;

namespace
{

const workloads::Benchmark &
tinyBenchmark()
{
    static const auto bench = workloads::buildLivermoreBenchmark(0.02);
    return bench;
}

const replay::Trace &
tinyTrace()
{
    static const replay::Trace trace = replay::captureTrace(
        SimConfig{}, tinyBenchmark().program, "test capture");
    return trace;
}

/** Assert cycle-simulated and replayed results are bit-identical. */
void
expectExactMatch(const SimConfig &cfg, const Program &program,
                 const replay::Trace &trace, const std::string &what)
{
    const SimResult cycle = runSimulation(cfg, program);
    const SimResult replayed = replay::replayTrace(cfg, program, trace);
    EXPECT_EQ(cycle.totalCycles, replayed.totalCycles) << what;
    EXPECT_EQ(cycle.instructions, replayed.instructions) << what;
    // Every counter the replay engine reports must exist in the cycle
    // run with the same value (the cycle run additionally has
    // cpi_stack counters the replay engine does not model).
    for (const auto &[name, value] : replayed.counters) {
        ASSERT_TRUE(cycle.hasCounter(name)) << what << " counter " << name;
        EXPECT_EQ(cycle.counter(name), value)
            << what << " counter " << name;
    }
    // And the replay engine must not silently drop machine counters.
    for (const auto &[name, value] : cycle.counters) {
        if (name.rfind("cpi_stack", 0) == 0)
            continue;
        EXPECT_TRUE(replayed.counters.count(name))
            << what << " missing counter " << name;
    }
}

} // namespace

TEST(ReplayExactTest, MatchesCycleSimulatorAcrossFullSweepGrid)
{
    const auto &bench = tinyBenchmark();
    const auto &trace = tinyTrace();
    SweepSpec spec;
    spec.strategies = {"conv", "8-8", "16-16", "16-32", "32-32", "tib"};
    for (const auto &strategy : spec.strategies) {
        for (unsigned size : spec.cacheSizes) {
            const auto cfg =
                makeValidSweepConfig(spec, strategy, size);
            if (!cfg)
                continue;
            expectExactMatch(*cfg, bench.program, trace,
                             strategy + ":" + std::to_string(size));
        }
    }
}

TEST(ReplayExactTest, MatchesUnderSlowAndPipelinedMemory)
{
    const auto &bench = tinyBenchmark();
    const auto &trace = tinyTrace();
    for (const bool pipelined : {false, true}) {
        SweepSpec spec;
        spec.mem.accessTime = 6;
        spec.mem.busWidthBytes = 8;
        spec.mem.pipelined = pipelined;
        for (const std::string strategy : {"conv", "16-16"}) {
            const auto cfg = makeValidSweepConfig(spec, strategy, 128);
            ASSERT_TRUE(cfg);
            expectExactMatch(*cfg, bench.program, trace,
                             strategy + (pipelined ? ":pipelined"
                                                   : ":unpipelined"));
        }
    }
}

TEST(ReplayExactTest, CaptureIsConfigIndependent)
{
    // The committed instruction stream is a property of the program
    // alone; captures under different machines must be identical.
    const auto &bench = tinyBenchmark();
    SimConfig conv;
    conv.fetch = conventionalConfigFor(64, 16);
    const replay::Trace a =
        replay::captureTrace(SimConfig{}, bench.program, "pipe");
    const replay::Trace b =
        replay::captureTrace(conv, bench.program, "conv");
    ASSERT_EQ(a.records.size(), b.records.size());
    EXPECT_EQ(a.records, b.records);
    EXPECT_EQ(a.meta.programSha256, b.meta.programSha256);
}

TEST(ReplayExactTest, SyntheticBranchyWorkloadMatches)
{
    workloads::BranchySpec bspec;
    bspec.blocks = 6;
    bspec.iterations = 40;
    const auto branchy = workloads::buildBranchyProgram(bspec);
    const replay::Trace trace = replay::captureTrace(
        SimConfig{}, branchy.program, "branchy");
    SweepSpec spec;
    for (const std::string strategy : {"conv", "16-16", "tib"}) {
        const auto cfg = makeValidSweepConfig(spec, strategy, 64);
        ASSERT_TRUE(cfg);
        expectExactMatch(*cfg, branchy.program, trace, strategy);
    }
}

TEST(ReplayExactTest, ResultMetaAttributesTheCapture)
{
    const auto &bench = tinyBenchmark();
    const auto &trace = tinyTrace();
    const SimResult r =
        replay::replayTrace(SimConfig{}, bench.program, trace);
    EXPECT_EQ(r.meta.at("engine"), "trace-exact");
    EXPECT_EQ(r.meta.at("trace_sha256"), trace.sha256);
    EXPECT_EQ(r.meta.at("program_sha256"), trace.meta.programSha256);
}

TEST(ReplayGuardTest, WrongProgramIsFatal)
{
    workloads::BranchySpec bspec;
    const auto branchy = workloads::buildBranchyProgram(bspec);
    EXPECT_THROW(replay::replayTrace(SimConfig{}, branchy.program,
                                     tinyTrace()),
                 FatalError);
}

TEST(ReplayGuardTest, FaultInjectionIsFatal)
{
    SimConfig cfg;
    cfg.fault.kinds = fault::All;
    cfg.fault.rate = 0.5;
    EXPECT_THROW(replay::replayTrace(cfg, tinyBenchmark().program,
                                     tinyTrace()),
                 FatalError);
}

TEST(ReplaySampledTest, EstimateWithinBoundAndDeterministic)
{
    const auto &bench = tinyBenchmark();
    const auto &trace = tinyTrace();
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    const SimResult cycle = runSimulation(cfg, bench.program);

    replay::ReplayOptions opt;
    opt.samplePeriod = 2000;
    opt.sampleWarmup = 200;
    opt.sampleMeasure = 500;
    const SimResult a =
        replay::replayTrace(cfg, bench.program, trace, opt);
    const SimResult b =
        replay::replayTrace(cfg, bench.program, trace, opt);

    // Deterministic: the same options give the identical estimate.
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.counters, b.counters);
    EXPECT_EQ(a.instructions, cycle.instructions);
    EXPECT_EQ(a.meta.at("engine"), "trace-sampled");

    // Within 10% of the true cycle count for this well-behaved
    // workload (docs/trace_replay.md discusses the bound).
    const double rel =
        std::abs(double(a.totalCycles) - double(cycle.totalCycles)) /
        double(cycle.totalCycles);
    EXPECT_LT(rel, 0.10) << "estimate " << a.totalCycles << " vs "
                         << cycle.totalCycles;
}

TEST(ReplaySampledTest, RejectsImpossibleWindowing)
{
    replay::ReplayOptions opt;
    opt.samplePeriod = 100;
    opt.sampleWarmup = 80;
    opt.sampleMeasure = 80; // warmup + measure > period
    EXPECT_THROW(replay::replayTrace(SimConfig{},
                                     tinyBenchmark().program,
                                     tinyTrace(), opt),
                 FatalError);
}

TEST(ReplaySweepTest, TraceEngineSweepMatchesCycleSweep)
{
    const auto &bench = tinyBenchmark();
    const auto &trace = tinyTrace();

    SweepSpec cycleSpec;
    cycleSpec.cacheSizes = {32, 64, 128};
    cycleSpec.strategies = {"conv", "16-16", "tib"};
    const Table cycleTable =
        runCacheSweep(cycleSpec, bench.program).table;

    SweepSpec traceSpec = cycleSpec;
    traceSpec.engine = SweepEngine::Trace;
    traceSpec.trace = &trace;
    const Table traceTable =
        runCacheSweep(traceSpec, bench.program).table;
    EXPECT_EQ(cycleTable.toCsv(), traceTable.toCsv());

    // Deterministic and worker-count independent.
    traceSpec.jobs = 8;
    const Table parallelTable =
        runCacheSweep(traceSpec, bench.program).table;
    EXPECT_EQ(traceTable.toCsv(), parallelTable.toCsv());
}

TEST(ReplaySweepTest, TraceEngineWithoutTraceIsFatal)
{
    SweepSpec spec;
    spec.engine = SweepEngine::Trace;
    EXPECT_THROW(runCacheSweep(spec, tinyBenchmark().program),
                 FatalError);
}

TEST(ReplaySweepTest, TraceEngineWithFaultsIsFatal)
{
    const auto &trace = tinyTrace();
    SweepSpec spec;
    spec.engine = SweepEngine::Trace;
    spec.trace = &trace;
    spec.fault.kinds = fault::All;
    spec.fault.rate = 0.1;
    EXPECT_THROW(runCacheSweep(spec, tinyBenchmark().program),
                 FatalError);
}

TEST(StandardFlagsTest, TraceEngineRejectsObsOutputs)
{
    StandardFlags flags;
    flags.engine = SweepEngine::Trace;
    flags.obs.cpiStack = true;
    SweepSpec spec;
    EXPECT_THROW(applyStandardFlags(spec, flags), FatalError);
}

TEST(StandardFlagsTest, PrepareSweepTraceRoundTripsThroughFile)
{
    const auto &bench = tinyBenchmark();
    const std::string path = "standard_flags_trace.pipetrc";
    std::remove(path.c_str());

    StandardFlags flags;
    flags.engine = SweepEngine::Trace;
    flags.traceFile = path;

    SweepSpec spec;
    auto captured = prepareSweepTrace(spec, flags, bench.program);
    ASSERT_TRUE(captured);
    EXPECT_EQ(spec.trace, captured.get());

    // Second call loads the saved file and yields the same trace.
    SweepSpec spec2;
    auto loaded = prepareSweepTrace(spec2, flags, bench.program);
    ASSERT_TRUE(loaded);
    EXPECT_EQ(captured->sha256, loaded->sha256);
    EXPECT_EQ(captured->records, loaded->records);
    std::remove(path.c_str());
}

TEST(StandardFlagsTest, CliRoundTrip)
{
    CliParser cli("test");
    registerStandardFlags(cli);
    const char *argv[] = {"tool",           "--engine",       "trace",
                          "--sample-period", "5000",          "--jobs",
                          "2",              "--point-retries", "1"};
    ASSERT_TRUE(cli.parse(9, argv));
    const StandardFlags f = standardFlagsFromCli(cli);
    EXPECT_EQ(f.engine, SweepEngine::Trace);
    EXPECT_EQ(f.samplePeriod, 5000u);
    EXPECT_EQ(f.jobs, 2u);
    EXPECT_EQ(f.pointRetries, 1u);
}

TEST(StandardFlagsTest, BadEngineNameIsFatal)
{
    CliParser cli("test");
    registerStandardFlags(cli);
    const char *argv[] = {"tool", "--engine", "warp"};
    ASSERT_TRUE(cli.parse(3, argv));
    EXPECT_THROW(standardFlagsFromCli(cli), FatalError);
}
