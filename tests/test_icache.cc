#include <gtest/gtest.h>

#include "common/log.hh"

#include "cache/icache.hh"

using namespace pipesim;

TEST(InstructionCacheTest, Geometry)
{
    InstructionCache c(128, 8);
    EXPECT_EQ(c.numLines(), 16u);
    EXPECT_EQ(c.lineBytes(), 8u);
    EXPECT_EQ(c.lineBase(0x17), 0x10u);
    EXPECT_EQ(c.lineBase(0x10), 0x10u);
}

TEST(InstructionCacheTest, ColdCacheMissesEverywhere)
{
    InstructionCache c(64, 16);
    EXPECT_FALSE(c.linePresent(0));
    EXPECT_FALSE(c.lineValid(0));
    EXPECT_FALSE(c.bytesValid(0, 4));
}

TEST(InstructionCacheTest, StreamingFill)
{
    InstructionCache c(64, 16);
    c.allocate(0x20);
    EXPECT_TRUE(c.linePresent(0x20));
    EXPECT_FALSE(c.lineValid(0x20));
    c.fill(0x20, 8);
    EXPECT_TRUE(c.bytesValid(0x20, 8));
    EXPECT_FALSE(c.bytesValid(0x28, 4));
    EXPECT_FALSE(c.lineValid(0x20));
    c.fill(0x28, 8);
    EXPECT_TRUE(c.lineValid(0x20));
    EXPECT_TRUE(c.bytesValid(0x2c, 4));
}

TEST(InstructionCacheTest, NonStreamingFillPanics)
{
    InstructionCache c(64, 16);
    c.allocate(0);
    EXPECT_THROW(c.fill(8, 4), PanicError); // skips bytes 0..7
}

TEST(InstructionCacheTest, FillUnallocatedPanics)
{
    InstructionCache c(64, 16);
    EXPECT_THROW(c.fill(0, 4), PanicError);
}

TEST(InstructionCacheTest, OverfillPanics)
{
    InstructionCache c(64, 16);
    c.allocate(0);
    c.fill(0, 16);
    EXPECT_THROW(c.fill(16, 4), PanicError);
}

TEST(InstructionCacheTest, DirectMappedConflict)
{
    InstructionCache c(32, 16); // two lines: 0x00/0x20 share a frame
    c.allocate(0x00);
    c.fill(0x00, 16);
    EXPECT_TRUE(c.lineValid(0x00));
    c.allocate(0x40); // same index as 0x00
    EXPECT_FALSE(c.linePresent(0x00));
    EXPECT_TRUE(c.linePresent(0x40));
    // The other frame is untouched.
    c.allocate(0x10);
    c.fill(0x10, 16);
    EXPECT_TRUE(c.lineValid(0x10));
    EXPECT_TRUE(c.linePresent(0x40));
}

TEST(InstructionCacheTest, SingleLineCache)
{
    InstructionCache c(16, 16);
    c.allocate(0x30);
    c.fill(0x30, 16);
    EXPECT_TRUE(c.lineValid(0x30));
    c.allocate(0x40);
    EXPECT_FALSE(c.linePresent(0x30));
}

TEST(InstructionCacheTest, InvalidateAll)
{
    InstructionCache c(64, 16);
    c.allocate(0);
    c.fill(0, 16);
    c.invalidateAll();
    EXPECT_FALSE(c.linePresent(0));
    EXPECT_FALSE(c.bytesValid(0, 4));
}

TEST(InstructionCacheTest, BadGeometryRejected)
{
    EXPECT_THROW(InstructionCache(100, 8), FatalError);
    EXPECT_THROW(InstructionCache(64, 12), FatalError);
    EXPECT_THROW(InstructionCache(8, 16), FatalError);
}

TEST(InstructionCacheTest, LookupStats)
{
    InstructionCache c(64, 16);
    StatGroup stats;
    c.regStats(stats, "ic");
    c.recordLookup(true);
    c.recordLookup(true);
    c.recordLookup(false);
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_NEAR(stats.formulaValue("ic.miss_rate"), 1.0 / 3.0, 1e-9);
}
