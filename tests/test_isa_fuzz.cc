/**
 * Randomised ISA coverage: every randomly generated valid instruction
 * must encode/decode to itself in both format modes, and arbitrary
 * parcel bit patterns must either decode to something well-formed or
 * raise a typed panic (never crash or yield out-of-range fields).
 */

#include <gtest/gtest.h>

#include "common/log.hh"

#include <random>

#include "isa/decode.hh"
#include "isa/disasm.hh"
#include "isa/encode.hh"

using namespace pipesim;
using namespace pipesim::isa;

namespace
{

Instruction
randomInstruction(std::mt19937 &rng)
{
    Instruction inst;
    inst.op = Opcode(rng() % unsigned(Opcode::NumOpcodes));
    const OpcodeInfo &info = opcodeInfo(inst.op);
    if (info.hasRd)
        inst.rd = std::uint8_t(rng() % 8);
    if (info.hasRs1)
        inst.rs1 = std::uint8_t(rng() % 8);
    if (info.hasRs2)
        inst.rs2 = std::uint8_t(rng() % 8);
    if (info.hasImm) {
        if (inst.op == Opcode::Lbr) {
            // Branch targets decode as unsigned 16-bit addresses.
            inst.imm = std::int32_t(rng() % 0x10000);
        } else {
            inst.imm = std::int32_t(rng() % 0x10000) - 0x8000;
        }
    }
    if (inst.op == Opcode::Pbr) {
        inst.br = std::uint8_t(rng() % 8);
        inst.count = std::uint8_t(rng() % 8);
        inst.cond = Cond(rng() % 7);
        inst.rs1 = std::uint8_t(rng() % 8);
    }
    if (inst.op == Opcode::Lbr)
        inst.br = std::uint8_t(rng() % 8);
    return inst;
}

} // namespace

class IsaFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(IsaFuzz, EncodeDecodeRoundTrip)
{
    std::mt19937 rng(GetParam());
    for (int i = 0; i < 500; ++i) {
        Instruction inst = randomInstruction(rng);
        for (FormatMode mode :
             {FormatMode::Compact, FormatMode::Fixed32}) {
            const auto parcels = encode(inst, mode);
            const Parcel p2 =
                parcels.size() > 1 ? parcels[1] : Parcel(0);
            Instruction out = decode(parcels[0], p2, mode);
            // Normalise the size field for comparison.
            Instruction expect = inst;
            expect.parcels = out.parcels;
            EXPECT_EQ(out, expect)
                << disassemble(inst) << " via mode " << int(mode);
        }
    }
}

TEST_P(IsaFuzz, DisassembleReencode)
{
    std::mt19937 rng(GetParam() ^ 0xabcd);
    for (int i = 0; i < 200; ++i) {
        Instruction inst = randomInstruction(rng);
        // Disassembly must never throw for valid instructions.
        EXPECT_FALSE(disassemble(inst).empty());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsaFuzz, ::testing::Range(0u, 8u));

TEST(IsaFuzzRaw, ArbitraryParcelsDecodeOrPanic)
{
    std::mt19937 rng(7);
    unsigned decoded = 0;
    unsigned panicked = 0;
    for (int i = 0; i < 5000; ++i) {
        const Parcel p1 = Parcel(rng());
        const Parcel p2 = Parcel(rng());
        try {
            const Instruction inst =
                decode(p1, p2, FormatMode::Compact);
            ++decoded;
            // Decoded fields are always in range.
            EXPECT_LT(unsigned(inst.op), unsigned(Opcode::NumOpcodes));
            EXPECT_LT(inst.rd, 8);
            EXPECT_LT(inst.rs1, 8);
            EXPECT_LT(inst.rs2, 8);
            EXPECT_LT(inst.br, 8);
            EXPECT_LE(inst.count, 7);
            EXPECT_GE(inst.parcels, 1);
            EXPECT_LE(inst.parcels, 2);
        } catch (const PanicError &) {
            ++panicked; // undefined major/function encodings
        }
    }
    // Both outcomes occur over the random space.
    EXPECT_GT(decoded, 0u);
    EXPECT_GT(panicked, 0u);
}

TEST(IsaFuzzRaw, BranchBitOnlyOnPbr)
{
    std::mt19937 rng(11);
    for (int i = 0; i < 2000; ++i) {
        const Parcel p1 = Parcel(rng());
        try {
            const Instruction inst =
                decode(p1, 0, FormatMode::Compact);
            EXPECT_EQ(inst.isPbr(), (p1 & 0x8000) != 0);
        } catch (const PanicError &) {
            // invalid encodings exempt
        }
    }
}
