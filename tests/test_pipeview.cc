#include <gtest/gtest.h>

#include "common/log.hh"

#include "assembler/assembler.hh"
#include "trace/pipeview.hh"

using namespace pipesim;

namespace
{

std::unique_ptr<Simulator>
makeSim(const char *src, unsigned access_time = 1)
{
    static std::vector<std::unique_ptr<Program>> keep_alive;
    keep_alive.push_back(
        std::make_unique<Program>(assembler::assemble(src)));
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    cfg.mem.accessTime = access_time;
    return std::make_unique<Simulator>(cfg, *keep_alive.back());
}

} // namespace

TEST(PipeViewer, SamplesEveryCycle)
{
    auto sim = makeSim("nop\nnop\nnop\nhalt");
    PipeViewer view;
    view.run(*sim);
    EXPECT_TRUE(sim->done());
    EXPECT_EQ(view.samples().size(), std::size_t(sim->now()));
    // Exactly 4 issue cycles.
    unsigned issued = 0;
    for (const auto &s : view.samples())
        issued += s.issued;
    EXPECT_EQ(issued, 4u);
}

TEST(PipeViewer, ClassifiesFetchStarvation)
{
    auto sim = makeSim("nop\nnop\nhalt", 6);
    PipeViewer view;
    view.run(*sim);
    bool saw_starve = false;
    for (const auto &s : view.samples())
        saw_starve |= s.cause == 'f';
    EXPECT_TRUE(saw_starve); // cold-start misses starve the decoder
}

TEST(PipeViewer, ClassifiesLoadDataWait)
{
    const char *src = R"(
        li  r1, 0x4000
        ld  [r1 + 0]
        mov r2, r7
        halt
    .data 0x4000
        .word 1
    )";
    auto sim = makeSim(src, 6);
    PipeViewer view;
    view.run(*sim);
    bool saw_data_wait = false;
    for (const auto &s : view.samples())
        saw_data_wait |= s.cause == 'd';
    EXPECT_TRUE(saw_data_wait);
}

TEST(PipeViewer, TimelineRendersAllCycles)
{
    auto sim = makeSim("nop\nnop\nnop\nnop\nhalt");
    PipeViewer view;
    view.run(*sim);
    const std::string tl = view.timeline(8);
    // Contains one 'I' per issue and wraps into rows of 8 columns.
    unsigned issues = 0;
    for (char c : tl)
        issues += c == 'I';
    EXPECT_EQ(issues, 5u);
    EXPECT_NE(tl.find('\n'), std::string::npos);
}

TEST(PipeViewer, SummaryPercentagesAddUp)
{
    auto sim = makeSim("nop\nnop\nhalt", 3);
    PipeViewer view;
    view.run(*sim);
    const std::string s = view.summary();
    EXPECT_NE(s.find("issue="), std::string::npos);
    EXPECT_NE(s.find("fetch-starve="), std::string::npos);
}

TEST(PipeViewer, RespectsMaxCycles)
{
    const char *src = R"(
        lbr b0, loop
    loop:
        nop
        pbr b0, 1, always
        nop
    )";
    auto sim = makeSim(src);
    PipeViewer view;
    view.run(*sim, 50);
    EXPECT_LE(view.samples().size(), 50u);
    EXPECT_FALSE(sim->done());
}
