/**
 * Cross-cutting coverage for behaviours the per-module suites do not
 * reach: the demand-only conventional mode, compact-format line
 * straddles in the PIPE unit, TIB entry conflicts, multi-cycle ALU
 * latency, and "tib" in the experiment sweeps.
 */

#include <gtest/gtest.h>

#include "common/log.hh"

#include "assembler/assembler.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "workloads/benchmark_program.hh"
#include "workloads/reference.hh"

using namespace pipesim;

namespace
{

const workloads::Benchmark &
bench()
{
    static const auto b = workloads::buildLivermoreBenchmark(0.04);
    return b;
}

void
verifyAll(Simulator &sim)
{
    for (std::size_t i = 0; i < bench().kernels.size(); ++i) {
        std::string diag;
        EXPECT_TRUE(workloads::verifyAgainstReference(
            sim.dataMemory(), bench().kernels[i], bench().codeInfo[i],
            &diag))
            << diag;
    }
}

} // namespace

TEST(DemandOnlyConventional, CorrectAndIssuesNoPrefetches)
{
    SimConfig cfg;
    cfg.fetch = conventionalConfigFor(64, 16);
    cfg.fetch.alwaysPrefetch = false;
    cfg.mem.accessTime = 6;
    Simulator sim(cfg, bench().program);
    const auto res = sim.run();
    verifyAll(sim);
    EXPECT_EQ(res.counter("fetch.prefetch_fetches"), 0u);
    EXPECT_GT(res.counter("fetch.demand_fetches"), 0u);
}

TEST(DemandOnlyConventional, NearTieWithAlwaysPrefetch)
{
    // Documented model property (see EXPERIMENTS.md): the pipelined
    // IF stage subsumes the one-instruction prefetch lookahead.
    SimConfig cfg;
    cfg.fetch = conventionalConfigFor(128, 16);
    cfg.mem.accessTime = 6;
    cfg.fetch.alwaysPrefetch = false;
    const auto off = runSimulation(cfg, bench().program);
    cfg.fetch.alwaysPrefetch = true;
    const auto on = runSimulation(cfg, bench().program);
    const double ratio =
        double(off.totalCycles) / double(on.totalCycles);
    EXPECT_NEAR(ratio, 1.0, 0.02);
}

TEST(CompactFormat, PipeHandlesLineStraddlingInstructions)
{
    // One-parcel nops push a two-parcel instruction across the
    // 8-byte line boundary (bytes 6..10).
    const char *src = R"(
        nop
        nop
        nop
        li  r1, 0x1234    ; straddles lines with 8-byte lines
        li  r6, 0x4000
        st  [r6 + 0]
        mov r7, r1
        halt
    )";
    Program p = assembler::assemble(src, isa::FormatMode::Compact);
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("8-8", 32);
    cfg.mem.accessTime = 6;
    Simulator sim(cfg, p);
    sim.run();
    EXPECT_EQ(sim.dataMemory().readWord(0x4000), 0x1234u);
}

TEST(CompactFormat, TibHandlesLineStraddlingInstructions)
{
    const char *src = R"(
        nop
        nop
        nop
        li  r1, 0x777
        li  r6, 0x4000
        st  [r6 + 0]
        mov r7, r1
        halt
    )";
    Program p = assembler::assemble(src, isa::FormatMode::Compact);
    SimConfig cfg;
    cfg.fetch = tibConfigFor(32, 8);
    cfg.mem.accessTime = 3;
    Simulator sim(cfg, p);
    sim.run();
    EXPECT_EQ(sim.dataMemory().readWord(0x4000), 0x777u);
}

TEST(TibConflicts, AliasedTargetsEvictEachOther)
{
    // Two alternating branch targets mapping to the same (single)
    // TIB entry: every warm hit is destroyed by the other target.
    const char *src = R"(
        li  r2, 6
        lbr b0, t0
        pbr b0, 0, always
    t0: nop
        subi r2, r2, 1
        lbr b1, t1
        pbr b1, 0, nez, r2
        halt
    t1: nop
        lbr b0, t0
        pbr b0, 0, always
        nop
    )";
    Program p = assembler::assemble(src);
    SimConfig cfg;
    // 16-byte TIB, 16-byte entries => one entry for both targets.
    cfg.fetch = tibConfigFor(16, 16);
    Simulator sim(cfg, p);
    const auto res = sim.run();
    EXPECT_GT(res.counter("fetch.tib_misses"), 2u);

    // A two-entry TIB resolves the conflict: more hits, fewer misses.
    cfg.fetch = tibConfigFor(64, 16);
    const auto big = runSimulation(cfg, p);
    EXPECT_LT(big.counter("fetch.tib_misses"),
              res.counter("fetch.tib_misses"));
}

TEST(AluLatency, MultiCycleResultsStallDependents)
{
    const char *src = R"(
        li  r1, 5
        add r2, r1, r1    ; depends on r1
        add r3, r2, r2    ; depends on r2
        li  r6, 0x4000
        st  [r6 + 0]
        mov r7, r3
        halt
    )";
    Program p = assembler::assemble(src);
    SimConfig fast;
    fast.fetch = pipeConfigFor("16-16", 128);
    fast.cpu.aluLatency = 1;
    const auto r1 = runSimulation(fast, p);
    EXPECT_EQ(r1.counter("cpu.stall_reg_busy"), 0u);

    SimConfig slow = fast;
    slow.cpu.aluLatency = 3;
    Simulator sim(slow, p);
    const auto r3 = sim.run();
    EXPECT_GT(r3.counter("cpu.stall_reg_busy"), 0u);
    EXPECT_GT(r3.totalCycles, r1.totalCycles);
    EXPECT_EQ(sim.dataMemory().readWord(0x4000), 20u);
}

TEST(ExperimentSweep, TibStrategySupported)
{
    SweepSpec spec;
    spec.cacheSizes = {16, 64};
    spec.strategies = {"conv", "tib", "16-16"};
    const Table t = runCacheSweep(spec, bench().program).table;
    EXPECT_EQ(t.numCols(), 4u);
    EXPECT_GT(std::stoull(t.at(0, 2)), 0u); // tib column populated
    EXPECT_TRUE(sweepPointValid(spec, "tib", 16));
}

TEST(ExperimentSweep, TibConfigHelper)
{
    const auto cfg = tibConfigFor(128, 16);
    EXPECT_EQ(cfg.strategy, FetchStrategy::Tib);
    EXPECT_EQ(cfg.cacheBytes, 128u);
    EXPECT_EQ(cfg.lineBytes, 16u);
    SimConfig sc;
    sc.fetch = cfg;
    EXPECT_EQ(sc.fetchName(), "tib");
}

TEST(DcachePipelined, CorrectUnderPipelinedMemory)
{
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-32", 64);
    cfg.mem.accessTime = 6;
    cfg.mem.pipelined = true;
    cfg.mem.dcacheBytes = 256;
    Simulator sim(cfg, bench().program);
    const auto res = sim.run();
    verifyAll(sim);
    EXPECT_GT(res.counter("mem.dcache_hits"), 0u);
}

TEST(DcacheGeometry, BadSizesRejected)
{
    SimConfig cfg;
    cfg.mem.dcacheBytes = 100; // not a power of two
    DataMemory dm(1 << 16);
    EXPECT_THROW(MemorySystem(cfg.mem, dm), FatalError);
}
