#include <gtest/gtest.h>

#include "common/log.hh"

#include "assembler/assembler.hh"
#include "core/tib_fetch.hh"
#include "mem/memory_system.hh"
#include "sim/simulator.hh"
#include "workloads/benchmark_program.hh"
#include "workloads/reference.hh"

using namespace pipesim;
using isa::Opcode;

namespace
{

struct Harness
{
    Harness(const std::string &src, FetchConfig fcfg,
            MemSystemConfig mcfg = {})
        : program(assembler::assemble(src)), dataMem(1 << 16),
          sys(mcfg, dataMem), unit(fcfg, program, sys)
    {
        dataMem.loadProgram(program);
    }

    void
    step()
    {
        unit.tick(now);
        sys.tick(now);
        ++now;
    }

    isa::FetchedInst
    pull(unsigned max_cycles = 200)
    {
        for (unsigned i = 0; i < max_cycles; ++i) {
            if (unit.instructionReady())
                return unit.take();
            step();
        }
        throw std::runtime_error("no instruction within limit");
    }

    Program program;
    DataMemory dataMem;
    MemorySystem sys;
    TibFetchUnit unit;
    Cycle now = 0;
};

const char *loopProgram = R"(
    lbr b0, loop
loop:
    add r1, r1, r1
    add r2, r2, r2
    pbr b0, 1, always
    nop
)";

FetchConfig
tibCfg(unsigned bytes = 64, unsigned entry = 16)
{
    return tibConfigFor(bytes, entry);
}

} // namespace

TEST(TibFetch, DeliversSequentialProgram)
{
    const char *src = "li r1, 1\nli r2, 2\nadd r3, r1, r2\nhalt\n";
    Harness h(src, tibCfg());
    EXPECT_EQ(h.pull().inst.op, Opcode::Li);
    EXPECT_EQ(h.pull().inst.op, Opcode::Li);
    EXPECT_EQ(h.pull().inst.op, Opcode::Add);
    EXPECT_EQ(h.pull().inst.op, Opcode::Halt);
}

TEST(TibFetch, FirstTakenBranchMissesThenHits)
{
    Harness h(loopProgram, tibCfg());
    StatGroup stats;
    h.unit.regStats(stats, "f");
    h.pull(); // lbr
    auto iteration = [&]() {
        h.pull();
        h.pull();
        h.pull(); // pbr
        h.step();
        h.unit.branchResolved(true, *h.program.symbol("loop"));
        h.pull(); // delay slot
    };
    iteration();
    // The target fetch is launched lazily on the next tick, so run a
    // few more iterations and check the totals: the first taken
    // branch misses and allocates, every later one hits.
    iteration();
    iteration();
    iteration();
    EXPECT_EQ(stats.counterValue("f.tib_misses"), 1u);
    EXPECT_GE(stats.counterValue("f.tib_hits"), 2u);
}

TEST(TibFetch, HitSuppliesTargetFasterThanColdMiss)
{
    // Warm the TIB, then compare redirect-to-target-delivery latency
    // for a hit vs the cold miss with slow memory.  Note each
    // "iteration" below starts from the loop head the previous one
    // already pulled.
    MemSystemConfig mcfg;
    mcfg.accessTime = 6;
    Harness h(loopProgram, tibCfg(), mcfg);
    h.pull(); // lbr
    h.pull(); // add@4 (initial sequential supply)
    auto iteration = [&](Cycle *redirect_to_head) {
        h.pull();            // add@8
        h.pull();            // pbr@12
        h.step();
        h.unit.branchResolved(true, *h.program.symbol("loop"));
        h.pull();            // delay slot @16
        const Cycle at_slot = h.now;
        const auto fi = h.pull(); // loop head again
        EXPECT_EQ(fi.pc, *h.program.symbol("loop"));
        if (redirect_to_head)
            *redirect_to_head = h.now - at_slot;
    };
    Cycle cold = 0;
    Cycle warm = 0;
    iteration(&cold);
    iteration(&warm);
    // The cold miss pays the off-chip round trip; the hit supplies
    // the target from the on-chip buffer.
    EXPECT_GT(cold, 2u);
    EXPECT_LE(warm, 1u);
}

TEST(TibFetch, EveryInstructionTravelsTheBus)
{
    // No cache: re-executing the same loop keeps fetching off-chip.
    Harness h(loopProgram, tibCfg());
    StatGroup stats;
    h.unit.regStats(stats, "f");
    h.pull();
    const auto fetches_at = [&]() {
        return stats.counterValue("f.offchip_fetches");
    };
    auto iteration = [&]() {
        h.pull();
        h.pull();
        h.pull();
        h.step();
        h.unit.branchResolved(true, *h.program.symbol("loop"));
        h.pull();
    };
    iteration();
    const auto after_one = fetches_at();
    iteration();
    iteration();
    // Off-chip fetches keep growing (sequential bytes past the TIB
    // entry are refetched every iteration).
    EXPECT_GT(fetches_at(), after_one);
}

TEST(TibFetch, GeometryValidation)
{
    Program p = assembler::assemble("halt");
    DataMemory dm(1 << 16);
    MemSystemConfig mcfg;
    MemorySystem sys(mcfg, dm);

    FetchConfig bad = tibCfg();
    bad.lineBytes = 12; // not a power of two
    EXPECT_THROW(TibFetchUnit(bad, p, sys), FatalError);

    FetchConfig small_buf = tibCfg();
    small_buf.iqBytes = 4;
    small_buf.iqbBytes = 4;
    EXPECT_THROW(TibFetchUnit(small_buf, p, sys), FatalError);

    FetchConfig odd_cap = tibCfg();
    odd_cap.cacheBytes = 24; // not a multiple of the entry size
    EXPECT_THROW(TibFetchUnit(odd_cap, p, sys), FatalError);
}

TEST(TibFetch, FullBenchmarkComputesCorrectly)
{
    static const auto bench = workloads::buildLivermoreBenchmark(0.05);
    for (unsigned size : {16u, 64u, 256u}) {
        SimConfig cfg;
        cfg.fetch = tibConfigFor(size, 16);
        cfg.mem.accessTime = 6;
        Simulator sim(cfg, bench.program);
        sim.run();
        for (std::size_t i = 0; i < bench.kernels.size(); ++i) {
            std::string diag;
            EXPECT_TRUE(workloads::verifyAgainstReference(
                sim.dataMemory(), bench.kernels[i], bench.codeInfo[i],
                &diag))
                << "size " << size << ": " << diag;
        }
    }
}

TEST(TibFetch, MoreOffchipTrafficThanPipe)
{
    // The paper's section 2.1 point: the TIB implies large amounts of
    // off-chip accessing compared to a cache of equal size.
    static const auto bench = workloads::buildLivermoreBenchmark(0.05);
    SimConfig tib;
    tib.fetch = tibConfigFor(128, 16);
    tib.mem.accessTime = 6;
    tib.mem.busWidthBytes = 8;
    const auto rt = runSimulation(tib, bench.program);

    SimConfig pipe;
    pipe.fetch = pipeConfigFor("16-16", 128);
    pipe.mem = tib.mem;
    const auto rp = runSimulation(pipe, bench.program);

    const auto tib_bytes = rt.counter("fetch.offchip_fetches") * 16;
    const auto pipe_bytes =
        (rp.counter("fetch.offchip_demand_lines") +
         rp.counter("fetch.offchip_prefetch_lines")) *
        16;
    EXPECT_GT(double(tib_bytes), 1.5 * double(pipe_bytes));
}

TEST(TibFetch, NotTakenBranchFallsThrough)
{
    const char *src = R"(
        lbr b0, 0
        pbr b0, 1, always
        nop
        add r1, r1, r1
        halt
    )";
    Harness h(src, tibCfg());
    h.pull();
    h.pull();
    h.unit.branchResolved(false, 0);
    EXPECT_EQ(h.pull().inst.op, Opcode::Nop);
    EXPECT_EQ(h.pull().inst.op, Opcode::Add);
    EXPECT_EQ(h.pull().inst.op, Opcode::Halt);
}
