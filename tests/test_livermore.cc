#include <gtest/gtest.h>

#include "common/log.hh"

#include <cmath>
#include <set>

#include "workloads/livermore.hh"
#include "workloads/reference.hh"

using namespace pipesim;
using namespace pipesim::workloads;
using namespace pipesim::codegen;

TEST(Livermore, FourteenKernelsWithDistinctIds)
{
    const auto kernels = livermoreKernels(0.1);
    ASSERT_EQ(kernels.size(), 14u);
    std::set<int> ids;
    for (const auto &k : kernels) {
        ids.insert(k.id);
        EXPECT_FALSE(k.name.empty());
        EXPECT_GE(k.tripCount, 2u);
        EXPECT_FALSE(k.body.empty());
        EXPECT_FALSE(k.arrays.empty());
    }
    EXPECT_EQ(ids.size(), 14u);
}

TEST(Livermore, InvalidIdIsFatal)
{
    EXPECT_THROW(livermoreKernel(0), FatalError);
    EXPECT_THROW(livermoreKernel(15), FatalError);
}

TEST(Livermore, ScaleControlsTripCount)
{
    const auto small = livermoreKernel(1, 0.1);
    const auto big = livermoreKernel(1, 1.0);
    EXPECT_LT(small.tripCount, big.tripCount);
    // Minimum trip count floor.
    EXPECT_GE(livermoreKernel(1, 0.0001).tripCount, 2u);
}

TEST(Livermore, ArraysCoverAllReferencedElements)
{
    // Every array reference across every iteration must be in bounds;
    // the reference interpreter asserts this internally.
    for (int id = 1; id <= numLivermoreKernels; ++id)
        EXPECT_NO_THROW(runReference(livermoreKernel(id, 0.2))) << id;
}

TEST(Livermore, InitValuesAreDeterministicAndNameKeyed)
{
    const float a0 = ArrayDecl::initValue("x", 0);
    EXPECT_EQ(a0, ArrayDecl::initValue("x", 0));
    EXPECT_NE(ArrayDecl::initValue("x", 0), ArrayDecl::initValue("y", 0));
    for (unsigned i = 0; i < 100; ++i) {
        const float v = ArrayDecl::initValue("z", i);
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_GT(v, 0.0f);
        EXPECT_LT(v, 1.0f);
    }
}

TEST(ReferenceInterp, InnerProductMatchesClosedForm)
{
    // Kernel 3 is q += z[k]*x[k]: check against a direct host loop.
    const auto k = livermoreKernel(3, 0.05);
    const auto result = runReference(k);
    float q = 0.0f;
    for (unsigned i = 0; i < k.tripCount; ++i)
        q += ArrayDecl::initValue("z", i) * ArrayDecl::initValue("x", i);
    EXPECT_EQ(result.scalars.at("q"), q);
}

TEST(ReferenceInterp, FirstDifferenceMatchesClosedForm)
{
    const auto k = livermoreKernel(12, 0.05);
    const auto result = runReference(k);
    for (unsigned i = 0; i < k.tripCount; ++i) {
        const float expect = ArrayDecl::initValue("y", i + 1) -
                             ArrayDecl::initValue("y", i);
        EXPECT_EQ(result.arrays.at("x")[i], expect) << i;
    }
}

TEST(ReferenceInterp, RecurrenceIsSequential)
{
    // Kernel 11: x[k+1] = x[k] + y[k+1] is a running sum.
    const auto k = livermoreKernel(11, 0.05);
    const auto result = runReference(k);
    float acc = ArrayDecl::initValue("x", 0);
    for (unsigned i = 0; i < k.tripCount; ++i) {
        acc = acc + ArrayDecl::initValue("y", i + 1);
        EXPECT_EQ(result.arrays.at("x")[i + 1], acc) << i;
    }
}

TEST(ReferenceInterp, ResultsAreFinite)
{
    for (int id = 1; id <= numLivermoreKernels; ++id) {
        const auto result = runReference(livermoreKernel(id, 0.3));
        for (const auto &[name, arr] : result.arrays)
            for (float v : arr)
                EXPECT_TRUE(std::isfinite(v))
                    << "kernel " << id << " array " << name;
        for (const auto &[name, v] : result.scalars)
            EXPECT_TRUE(std::isfinite(v))
                << "kernel " << id << " scalar " << name;
    }
}

TEST(ReferenceInterp, OuterRepsCompose)
{
    auto k = livermoreKernel(3, 0.05);
    k.outerReps = 2;
    const auto twice = runReference(k);
    k.outerReps = 1;
    const auto once = runReference(k);
    // The accumulator keeps growing across passes.
    EXPECT_GT(twice.scalars.at("q"), once.scalars.at("q"));
}
