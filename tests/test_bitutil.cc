#include <gtest/gtest.h>

#include "common/log.hh"

#include "common/bitutil.hh"

using namespace pipesim;

TEST(BitUtil, MaskWidths)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(4), 0xfu);
    EXPECT_EQ(mask(16), 0xffffu);
    EXPECT_EQ(mask(32), 0xffffffffu);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
    EXPECT_EQ(mask(70), ~std::uint64_t{0});
}

TEST(BitUtil, BitsExtract)
{
    EXPECT_EQ(bits(0xdeadbeef, 0, 4), 0xfu);
    EXPECT_EQ(bits(0xdeadbeef, 4, 4), 0xeu);
    EXPECT_EQ(bits(0xdeadbeef, 16, 16), 0xdeadu);
    EXPECT_EQ(bits(0xdeadbeef, 31, 1), 1u);
    EXPECT_EQ(bits(0x8000, 15, 1), 1u);
}

TEST(BitUtil, InsertBits)
{
    EXPECT_EQ(insertBits(0, 4, 4, 0xf), 0xf0u);
    EXPECT_EQ(insertBits(0xffff, 4, 8, 0), 0xf00fu);
    // Inserted field is masked to the width.
    EXPECT_EQ(insertBits(0, 0, 4, 0x1ff), 0xfu);
}

TEST(BitUtil, SignExtend)
{
    EXPECT_EQ(sext(0x7fff, 16), 0x7fff);
    EXPECT_EQ(sext(0x8000, 16), -32768);
    EXPECT_EQ(sext(0xffff, 16), -1);
    EXPECT_EQ(sext(0xff, 8), -1);
    EXPECT_EQ(sext(0x7f, 8), 127);
    EXPECT_EQ(sext(0, 16), 0);
}

TEST(BitUtil, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1024));
    EXPECT_FALSE(isPowerOf2(1023));
    EXPECT_TRUE(isPowerOf2(std::uint64_t{1} << 63));
}

TEST(BitUtil, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
}

TEST(BitUtil, Alignment)
{
    EXPECT_EQ(alignDown(0x1234, 16), 0x1230u);
    EXPECT_EQ(alignDown(0x1230, 16), 0x1230u);
    EXPECT_EQ(alignUp(0x1234, 16), 0x1240u);
    EXPECT_EQ(alignUp(0x1240, 16), 0x1240u);
    EXPECT_EQ(alignUp(0, 16), 0u);
}

TEST(BitUtil, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
    EXPECT_EQ(divCeil(32, 8), 4u);
}
