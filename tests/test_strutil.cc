#include <gtest/gtest.h>

#include "common/log.hh"

#include "common/strutil.hh"

using namespace pipesim;

TEST(StrUtil, Trim)
{
    EXPECT_EQ(trim("  hello  "), "hello");
    EXPECT_EQ(trim("hello"), "hello");
    EXPECT_EQ(trim("\t x \n"), "x");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(StrUtil, Split)
{
    const auto parts = split("a, b ,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(StrUtil, SplitKeepsEmptyPieces)
{
    const auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "");
}

TEST(StrUtil, SplitSingle)
{
    const auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(StrUtil, IEquals)
{
    EXPECT_TRUE(iequals("Add", "add"));
    EXPECT_TRUE(iequals("PBR", "pbr"));
    EXPECT_FALSE(iequals("add", "adds"));
    EXPECT_FALSE(iequals("add", "sub"));
    EXPECT_TRUE(iequals("", ""));
}

TEST(StrUtil, ToLower)
{
    EXPECT_EQ(toLower("HeLLo"), "hello");
    EXPECT_EQ(toLower("123aB"), "123ab");
}

TEST(StrUtil, ParseIntDecimal)
{
    EXPECT_EQ(parseInt("0"), 0);
    EXPECT_EQ(parseInt("42"), 42);
    EXPECT_EQ(parseInt("-42"), -42);
    EXPECT_EQ(parseInt("+7"), 7);
    EXPECT_EQ(parseInt(" 13 "), 13);
}

TEST(StrUtil, ParseIntHexAndBinary)
{
    EXPECT_EQ(parseInt("0x10"), 16);
    EXPECT_EQ(parseInt("0XfF"), 255);
    EXPECT_EQ(parseInt("0b101"), 5);
    EXPECT_EQ(parseInt("-0x10"), -16);
}

TEST(StrUtil, ParseIntRejectsGarbage)
{
    EXPECT_FALSE(parseInt(""));
    EXPECT_FALSE(parseInt("abc"));
    EXPECT_FALSE(parseInt("12x"));
    EXPECT_FALSE(parseInt("0x"));
    EXPECT_FALSE(parseInt("-"));
    EXPECT_FALSE(parseInt("0b2"));
}

TEST(StrUtil, Format)
{
    EXPECT_EQ(format("%d-%s", 5, "x"), "5-x");
    EXPECT_EQ(format("%04x", 0xab), "00ab");
    EXPECT_EQ(format("plain"), "plain");
}
