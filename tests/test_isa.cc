#include <gtest/gtest.h>

#include "common/log.hh"

#include "isa/decode.hh"
#include "isa/encode.hh"
#include "isa/fields.hh"
#include "isa/opcodes.hh"

using namespace pipesim;
using namespace pipesim::isa;

namespace
{

Instruction
make(Opcode op)
{
    Instruction i;
    i.op = op;
    return i;
}

/** Encode then decode under @p mode; return the decoded form. */
Instruction
roundTrip(const Instruction &inst, FormatMode mode)
{
    const auto parcels = encode(inst, mode);
    const Parcel p2 = parcels.size() > 1 ? parcels[1] : Parcel(0);
    return decode(parcels[0], p2, mode);
}

} // namespace

TEST(OpcodeInfo, MnemonicLookupIsInverse)
{
    for (unsigned i = 0; i < unsigned(Opcode::NumOpcodes); ++i) {
        const Opcode op = Opcode(i);
        const auto back = opcodeFromMnemonic(mnemonic(op));
        ASSERT_TRUE(back.has_value()) << mnemonic(op);
        EXPECT_EQ(*back, op);
    }
}

TEST(OpcodeInfo, MnemonicLookupCaseInsensitive)
{
    EXPECT_EQ(opcodeFromMnemonic("ADD"), Opcode::Add);
    EXPECT_EQ(opcodeFromMnemonic("Pbr"), Opcode::Pbr);
    EXPECT_FALSE(opcodeFromMnemonic("bogus"));
}

TEST(OpcodeInfo, TraitsAreConsistent)
{
    EXPECT_TRUE(opcodeInfo(Opcode::Ld).isLoad);
    EXPECT_TRUE(opcodeInfo(Opcode::LdX).isLoad);
    EXPECT_TRUE(opcodeInfo(Opcode::St).isStore);
    EXPECT_TRUE(opcodeInfo(Opcode::StX).isStore);
    EXPECT_TRUE(opcodeInfo(Opcode::Pbr).isBranch);
    EXPECT_FALSE(opcodeInfo(Opcode::Lbr).isBranch);
    EXPECT_EQ(opcodeInfo(Opcode::Add).parcels, 1u);
    EXPECT_EQ(opcodeInfo(Opcode::Addi).parcels, 2u);
    EXPECT_EQ(opcodeInfo(Opcode::Lbr).parcels, 2u);
}

TEST(CondNames, RoundTrip)
{
    for (unsigned i = 0; i < 7; ++i) {
        const Cond c = Cond(i);
        const auto back = condFromName(condName(c));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, c);
    }
    EXPECT_FALSE(condFromName("never"));
}

TEST(Fields, BranchBitIdentifiesPbrOnly)
{
    Instruction pbr = make(Opcode::Pbr);
    pbr.br = 3;
    pbr.count = 5;
    pbr.cond = Cond::Nez;
    pbr.rs1 = 2;
    const auto pbr_parcels = encode(pbr, FormatMode::Compact);
    EXPECT_TRUE(parcelIsBranch(pbr_parcels[0]));

    // Every other opcode must not set the branch bit.
    for (unsigned i = 0; i < unsigned(Opcode::NumOpcodes); ++i) {
        const Opcode op = Opcode(i);
        if (op == Opcode::Pbr)
            continue;
        Instruction inst = make(op);
        const auto parcels = encode(inst, FormatMode::Compact);
        EXPECT_FALSE(parcelIsBranch(parcels[0])) << mnemonic(op);
    }
}

TEST(EncodeDecode, AluRegisterForms)
{
    for (Opcode op : {Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or,
                      Opcode::Xor, Opcode::Sll, Opcode::Srl, Opcode::Sra}) {
        Instruction inst = make(op);
        inst.rd = 3;
        inst.rs1 = 5;
        inst.rs2 = 6;
        for (FormatMode mode :
             {FormatMode::Compact, FormatMode::Fixed32}) {
            const Instruction out = roundTrip(inst, mode);
            EXPECT_EQ(out.op, op);
            EXPECT_EQ(out.rd, 3);
            EXPECT_EQ(out.rs1, 5);
            EXPECT_EQ(out.rs2, 6);
        }
    }
}

TEST(EncodeDecode, AluImmediateForms)
{
    for (Opcode op :
         {Opcode::Addi, Opcode::Subi, Opcode::Andi, Opcode::Ori,
          Opcode::Xori, Opcode::Slli, Opcode::Srli, Opcode::Srai}) {
        Instruction inst = make(op);
        inst.rd = 1;
        inst.rs1 = 2;
        inst.imm = -1234;
        const Instruction out = roundTrip(inst, FormatMode::Compact);
        EXPECT_EQ(out.op, op);
        EXPECT_EQ(out.imm, -1234);
        EXPECT_EQ(out.parcels, 2u);
    }
}

TEST(EncodeDecode, ImmediateBoundaries)
{
    Instruction inst = make(Opcode::Li);
    inst.rd = 4;
    for (int imm : {-32768, -1, 0, 1, 32767}) {
        inst.imm = imm;
        EXPECT_EQ(roundTrip(inst, FormatMode::Compact).imm, imm) << imm;
    }
}

TEST(EncodeDecode, ImmediateOutOfRangeIsFatal)
{
    Instruction inst = make(Opcode::Li);
    inst.imm = 70000;
    EXPECT_THROW(encode(inst, FormatMode::Compact), FatalError);
    inst.imm = -32769;
    EXPECT_THROW(encode(inst, FormatMode::Compact), FatalError);
}

TEST(EncodeDecode, MemoryForms)
{
    Instruction ld = make(Opcode::Ld);
    ld.rs1 = 2;
    ld.imm = 100;
    Instruction out = roundTrip(ld, FormatMode::Compact);
    EXPECT_EQ(out.op, Opcode::Ld);
    EXPECT_EQ(out.rs1, 2);
    EXPECT_EQ(out.imm, 100);
    EXPECT_EQ(out.parcels, 2u);

    Instruction ldx = make(Opcode::LdX);
    ldx.rs1 = 1;
    ldx.rs2 = 3;
    out = roundTrip(ldx, FormatMode::Compact);
    EXPECT_EQ(out.op, Opcode::LdX);
    EXPECT_EQ(out.parcels, 1u);

    Instruction st = make(Opcode::St);
    st.rs1 = 6;
    st.imm = -8;
    out = roundTrip(st, FormatMode::Compact);
    EXPECT_EQ(out.op, Opcode::St);
    EXPECT_EQ(out.imm, -8);

    Instruction stx = make(Opcode::StX);
    stx.rs1 = 6;
    stx.rs2 = 0;
    out = roundTrip(stx, FormatMode::Compact);
    EXPECT_EQ(out.op, Opcode::StX);
}

TEST(EncodeDecode, PbrCarriesAllFields)
{
    Instruction pbr = make(Opcode::Pbr);
    pbr.br = 5;
    pbr.count = 7;
    pbr.cond = Cond::Lez;
    pbr.rs1 = 4;
    for (FormatMode mode : {FormatMode::Compact, FormatMode::Fixed32}) {
        const Instruction out = roundTrip(pbr, mode);
        EXPECT_EQ(out.op, Opcode::Pbr);
        EXPECT_EQ(out.br, 5);
        EXPECT_EQ(out.count, 7);
        EXPECT_EQ(out.cond, Cond::Lez);
        EXPECT_EQ(out.rs1, 4);
    }
}

TEST(EncodeDecode, LbrTargetIsUnsigned16)
{
    Instruction lbr = make(Opcode::Lbr);
    lbr.br = 2;
    lbr.imm = 0xfffe; // high addresses must not sign-extend
    const Instruction out = roundTrip(lbr, FormatMode::Compact);
    EXPECT_EQ(out.op, Opcode::Lbr);
    EXPECT_EQ(out.br, 2);
    EXPECT_EQ(out.imm, 0xfffe);
}

TEST(EncodeDecode, Fixed32PadsSingleParcelForms)
{
    Instruction add = make(Opcode::Add);
    const auto compact = encode(add, FormatMode::Compact);
    const auto fixed = encode(add, FormatMode::Fixed32);
    EXPECT_EQ(compact.size(), 1u);
    EXPECT_EQ(fixed.size(), 2u);
    EXPECT_EQ(fixed[1], 0u);
    EXPECT_EQ(roundTrip(add, FormatMode::Fixed32).parcels, 2u);
    EXPECT_EQ(roundTrip(add, FormatMode::Compact).parcels, 1u);
}

TEST(EncodeDecode, InstParcelsMatchesEncodedSize)
{
    for (unsigned i = 0; i < unsigned(Opcode::NumOpcodes); ++i) {
        Instruction inst = make(Opcode(i));
        for (FormatMode mode :
             {FormatMode::Compact, FormatMode::Fixed32}) {
            const auto parcels = encode(inst, mode);
            EXPECT_EQ(instParcels(parcels[0], mode), parcels.size())
                << mnemonic(Opcode(i));
        }
    }
}

TEST(InstructionHelpers, SrcRegsAndQueueUse)
{
    Instruction add = make(Opcode::Add);
    add.rd = 7;
    add.rs1 = 7;
    add.rs2 = 2;
    EXPECT_EQ(add.srcRegs(), (std::vector<std::uint8_t>{7, 2}));
    EXPECT_EQ(add.ldqPops(), 1u);
    EXPECT_TRUE(add.pushesSdq());
    EXPECT_TRUE(add.writesReg(7));
    EXPECT_FALSE(add.writesReg(3));

    Instruction mv = make(Opcode::Mov);
    mv.rd = 7;
    mv.rs1 = 7;
    EXPECT_EQ(mv.ldqPops(), 1u);
    EXPECT_TRUE(mv.pushesSdq());

    Instruction pbr = make(Opcode::Pbr);
    pbr.cond = Cond::Nez;
    pbr.rs1 = 7;
    EXPECT_EQ(pbr.ldqPops(), 1u);
    pbr.cond = Cond::Always;
    EXPECT_EQ(pbr.ldqPops(), 0u);

    Instruction ld = make(Opcode::Ld);
    ld.rs1 = 1;
    EXPECT_TRUE(ld.isLoad());
    EXPECT_FALSE(ld.pushesSdq());
    EXPECT_EQ(ld.ldqPops(), 0u);
}

TEST(InstructionHelpers, SizeBytes)
{
    Instruction add = make(Opcode::Add);
    add.parcels = 1;
    EXPECT_EQ(add.sizeBytes(), 2u);
    add.parcels = 2;
    EXPECT_EQ(add.sizeBytes(), 4u);
}
