#include <gtest/gtest.h>

#include "common/stats.hh"
#include "common/log.hh"

using namespace pipesim;

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    EXPECT_EQ(c.value(), 1u);
    c += 10;
    EXPECT_EQ(c.value(), 11u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    c.set(99);
    EXPECT_EQ(c.value(), 99u);
}

TEST(HistogramTest, BasicSampling)
{
    Histogram h(10, 4);
    h.sample(0);
    h.sample(5);
    h.sample(15);
    h.sample(39);
    h.sample(100); // overflow bucket
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.buckets()[4], 1u); // overflow
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 5 + 15 + 39 + 100) / 5.0);
}

TEST(HistogramTest, ResetClearsEverything)
{
    Histogram h(1, 4);
    h.sample(3);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    for (auto b : h.buckets())
        EXPECT_EQ(b, 0u);
}

TEST(HistogramTest, RejectsBadParameters)
{
    EXPECT_THROW(Histogram(0, 4), PanicError);
    EXPECT_THROW(Histogram(1, 0), PanicError);
}

TEST(StatGroupTest, CounterRegistrationAndLookup)
{
    StatGroup g;
    Counter a, b;
    g.regCounter("x.a", &a, "counts a");
    g.regCounter("x.b", &b);
    ++a;
    ++a;
    EXPECT_EQ(g.counterValue("x.a"), 2u);
    EXPECT_EQ(g.counterValue("x.b"), 0u);
    EXPECT_TRUE(g.hasCounter("x.a"));
    EXPECT_FALSE(g.hasCounter("x.c"));
}

TEST(StatGroupTest, DuplicateNamesPanic)
{
    StatGroup g;
    Counter a, b;
    g.regCounter("dup", &a);
    EXPECT_THROW(g.regCounter("dup", &b), PanicError);
    Histogram h;
    EXPECT_THROW(g.regHistogram("dup", &h), PanicError);
    EXPECT_THROW(g.regFormula("dup", [] { return 0.0; }), PanicError);
}

TEST(StatGroupTest, UnknownCounterPanics)
{
    StatGroup g;
    EXPECT_THROW(g.counterValue("nope"), PanicError);
}

TEST(StatGroupTest, FormulaEvaluatesAtReadTime)
{
    StatGroup g;
    Counter hits, total;
    g.regCounter("hits", &hits);
    g.regCounter("total", &total);
    g.regFormula("ratio", [&] {
        return total.value() ? double(hits.value()) / total.value() : 0.0;
    });
    EXPECT_DOUBLE_EQ(g.formulaValue("ratio"), 0.0);
    hits += 3;
    total += 4;
    EXPECT_DOUBLE_EQ(g.formulaValue("ratio"), 0.75);
}

TEST(StatGroupTest, ResetAllResetsCountersAndHistograms)
{
    StatGroup g;
    Counter c;
    Histogram h;
    g.regCounter("c", &c);
    g.regHistogram("h", &h);
    c += 5;
    h.sample(2);
    g.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.count(), 0u);
}

TEST(StatGroupTest, DumpContainsNamesAndValues)
{
    StatGroup g;
    Counter c;
    c += 42;
    g.regCounter("my.counter", &c, "the answer");
    const std::string dump = g.dump();
    EXPECT_NE(dump.find("my.counter"), std::string::npos);
    EXPECT_NE(dump.find("42"), std::string::npos);
    EXPECT_NE(dump.find("the answer"), std::string::npos);
}

TEST(StatGroupTest, CounterNamesPreserveOrder)
{
    StatGroup g;
    Counter a, b, c;
    g.regCounter("z", &a);
    g.regCounter("a", &b);
    g.regCounter("m", &c);
    const auto names = g.counterNames();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "z");
    EXPECT_EQ(names[1], "a");
    EXPECT_EQ(names[2], "m");
}
