#include <gtest/gtest.h>

#include "common/log.hh"

#include "assembler/assembler.hh"
#include "isa/disasm.hh"

using namespace pipesim;
using namespace pipesim::isa;

namespace
{

Instruction
asmOne(const std::string &line)
{
    Program p = assembler::assemble(line, FormatMode::Compact);
    return *p.decodeAt(0);
}

} // namespace

TEST(Disasm, AluForms)
{
    EXPECT_EQ(disassemble(asmOne("add r1, r2, r3")), "add r1, r2, r3");
    EXPECT_EQ(disassemble(asmOne("sra r7, r0, r1")), "sra r7, r0, r1");
    EXPECT_EQ(disassemble(asmOne("addi r1, r2, -5")), "addi r1, r2, -5");
    EXPECT_EQ(disassemble(asmOne("xori r4, r4, 255")),
              "xori r4, r4, 255");
}

TEST(Disasm, Immediates)
{
    EXPECT_EQ(disassemble(asmOne("li r3, 1000")), "li r3, 1000");
    EXPECT_EQ(disassemble(asmOne("lui r3, 15")), "lui r3, 15");
}

TEST(Disasm, MemoryForms)
{
    EXPECT_EQ(disassemble(asmOne("ld [r1 + 8]")), "ld [r1 + 8]");
    EXPECT_EQ(disassemble(asmOne("ld [r1 + r2]")), "ldx [r1 + r2]");
    EXPECT_EQ(disassemble(asmOne("st [r6 + -4]")), "st [r6 + -4]");
    EXPECT_EQ(disassemble(asmOne("stx [r6 + r0]")), "stx [r6 + r0]");
}

TEST(Disasm, ControlForms)
{
    EXPECT_EQ(disassemble(asmOne("lbr b2, 64")), "lbr b2, 64");
    EXPECT_EQ(disassemble(asmOne("pbr b0, 4, nez, r2")),
              "pbr b0, 4, nez, r2");
    EXPECT_EQ(disassemble(asmOne("pbr b1, 0, always")),
              "pbr b1, 0, always");
}

TEST(Disasm, MiscForms)
{
    EXPECT_EQ(disassemble(asmOne("mov r1, r2")), "mov r1, r2");
    EXPECT_EQ(disassemble(asmOne("not r1, r2")), "not r1, r2");
    EXPECT_EQ(disassemble(asmOne("neg r1, r2")), "neg r1, r2");
    EXPECT_EQ(disassemble(asmOne("nop")), "nop");
    EXPECT_EQ(disassemble(asmOne("rsw")), "rsw");
    EXPECT_EQ(disassemble(asmOne("halt")), "halt");
}

TEST(Disasm, RoundTripsThroughAssembler)
{
    // Disassembly must reassemble to the same encoding.
    const char *lines[] = {
        "add r1, r2, r3", "subi r4, r4, 1",    "li r0, 0",
        "ld [r1 + 12]",   "stx [r2 + r3]",     "lbr b0, 36",
        "pbr b0, 7, gtz, r4", "mov r7, r7",    "halt",
    };
    for (const char *line : lines) {
        const Instruction first = asmOne(line);
        const Instruction second = asmOne(disassemble(first));
        EXPECT_EQ(first, second) << line;
    }
}
