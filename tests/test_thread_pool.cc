#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "common/log.hh"
#include "common/thread_pool.hh"
#include "obs/metrics.hh"

using namespace pipesim;

namespace
{

/** Scoped PIPESIM_JOBS override (restores the old value on exit). */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : _name(name)
    {
        if (const char *old = std::getenv(name))
            _old = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (_old)
            ::setenv(_name, _old->c_str(), 1);
        else
            ::unsetenv(_name);
    }

  private:
    const char *_name;
    std::optional<std::string> _old;
};

} // namespace

TEST(ThreadPoolTest, ResolveJobCountExplicitWins)
{
    ScopedEnv env("PIPESIM_JOBS", "3");
    EXPECT_EQ(resolveJobCount(5), 5u);
}

TEST(ThreadPoolTest, ResolveJobCountReadsEnv)
{
    ScopedEnv env("PIPESIM_JOBS", "3");
    EXPECT_EQ(resolveJobCount(0), 3u);
}

TEST(ThreadPoolTest, ResolveJobCountIgnoresBadEnv)
{
    setLogQuiet(true);
    {
        ScopedEnv env("PIPESIM_JOBS", "banana");
        EXPECT_GE(resolveJobCount(0), 1u);
    }
    {
        ScopedEnv env("PIPESIM_JOBS", "0");
        EXPECT_GE(resolveJobCount(0), 1u);
    }
    setLogQuiet(false);
}

TEST(ThreadPoolTest, ResolveJobCountDefaultsToHardware)
{
    ScopedEnv env("PIPESIM_JOBS", nullptr);
    EXPECT_GE(resolveJobCount(0), 1u);
}

TEST(ThreadPoolTest, RunsSubmittedTasks)
{
    std::atomic<int> sum{0};
    {
        ThreadPool pool(4);
        EXPECT_EQ(pool.workerCount(), 4u);
        std::vector<std::future<void>> futures;
        for (int i = 1; i <= 100; ++i)
            futures.push_back(pool.submit([&sum, i] { sum += i; }));
        for (auto &f : futures)
            f.get();
    }
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder)
{
    std::vector<int> order;
    {
        ThreadPool pool(1);
        for (int i = 0; i < 50; ++i)
            pool.submit([&order, i] { order.push_back(i); });
        pool.wait();
    }
    ASSERT_EQ(order.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(order[size_t(i)], i);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] {});
    auto bad = pool.submit([] { fatal("worker exploded"); });
    EXPECT_NO_THROW(ok.get());
    try {
        bad.get();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("worker exploded"),
                  std::string::npos);
    }
    // The pool stays usable after a task threw.
    auto after = pool.submit([] {});
    EXPECT_NO_THROW(after.get());
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedWork)
{
    std::atomic<int> ran{0};
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    {
        ThreadPool pool(1);
        // Park the only worker so the remaining tasks stay queued
        // when the destructor runs.
        pool.submit([&] {
            std::unique_lock<std::mutex> lock(m);
            cv.wait(lock, [&] { return release; });
        });
        for (int i = 0; i < 25; ++i)
            pool.submit([&ran] { ++ran; });
        EXPECT_EQ(ran.load(), 0);
        {
            std::lock_guard<std::mutex> lock(m);
            release = true;
        }
        cv.notify_one();
        // ~ThreadPool: all 25 queued tasks must still run.
    }
    EXPECT_EQ(ran.load(), 25);
}

TEST(ThreadPoolTest, WaitBlocksUntilAllTasksFinish)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 40; ++i)
        pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 40);
    EXPECT_EQ(pool.pendingTasks(), 0u);
    // wait() with nothing in flight returns immediately.
    pool.wait();
}

TEST(ThreadPoolTest, WorkerStatsAccountForTasks)
{
    const unsigned workers = 3;
    const int tasks = 60;
    std::uint64_t poolTasksBefore =
        obs::MetricsRegistry::instance().counter("pool.tasks").value();
    {
        ThreadPool pool(workers);
        for (int i = 0; i < tasks; ++i)
            pool.submit([] {
                // Enough work to register on the busy clock.
                volatile unsigned v = 0;
                for (unsigned j = 0; j < 20000; ++j)
                    v = v + j;
            });
        pool.wait();

        const auto stats = pool.workerStats();
        ASSERT_EQ(stats.size(), workers);
        std::uint64_t taskSum = 0, busySum = 0, emptySum = 0;
        for (const auto &s : stats) {
            taskSum += s.tasks;
            busySum += s.busyNs;
            emptySum += s.emptyWakeups;
        }
        EXPECT_EQ(taskSum, std::uint64_t(tasks));
        EXPECT_GT(busySum, 0u);
        // The entry evaluation of the wait predicate must not be
        // charged as an empty wakeup (it used to add ~1 phantom per
        // executed task).  Genuine OS spurious wakeups are permitted
        // but rare, so the total stays far below the task count.
        EXPECT_LT(emptySum, std::uint64_t(tasks));
    }
    // Destruction publishes the aggregates into the global registry.
    auto &reg = obs::MetricsRegistry::instance();
    EXPECT_EQ(reg.counter("pool.tasks").value() - poolTasksBefore,
              std::uint64_t(tasks));
    EXPECT_EQ(reg.gauge("pool.workers").value(),
              std::int64_t(workers));
}
