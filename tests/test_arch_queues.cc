#include <gtest/gtest.h>

#include "common/log.hh"

#include "queue/arch_queues.hh"

using namespace pipesim;

TEST(ArchQueues, CapacitiesAsConfigured)
{
    ArchQueues q(2, 3, 4, 5);
    EXPECT_EQ(q.laq().capacity(), 2u);
    EXPECT_EQ(q.ldq().capacity(), 3u);
    EXPECT_EQ(q.saq().capacity(), 4u);
    EXPECT_EQ(q.sdq().capacity(), 5u);
}

TEST(ArchQueues, IndependentQueues)
{
    ArchQueues q(4, 4, 4, 4);
    q.laq().push(PendingAccess{0, 0x10});
    q.saq().push(PendingAccess{1, 0x20});
    q.ldq().push(0xaaaa);
    q.sdq().push(0xbbbb);
    EXPECT_EQ(q.laq().front().addr, 0x10u);
    EXPECT_EQ(q.saq().front().seq, 1u);
    EXPECT_EQ(q.ldq().pop(), 0xaaaau);
    EXPECT_EQ(q.sdq().pop(), 0xbbbbu);
    EXPECT_EQ(q.laq().size(), 1u);
}

TEST(ArchQueues, OccupancyStatsRegisterAndSample)
{
    ArchQueues q(4, 4, 4, 4);
    StatGroup stats;
    q.regStats(stats, "q");
    q.ldq().push(1);
    q.ldq().push(2);
    q.sampleOccupancy();
    q.sampleOccupancy();
    const std::string dump = stats.dump();
    EXPECT_NE(dump.find("q.ldq_occupancy"), std::string::npos);
    EXPECT_NE(dump.find("count=2"), std::string::npos);
}
