/**
 * The PIPERES sweep result store (store/result_store.hh):
 *
 *  - results must round-trip through the journal bit-exactly (label,
 *    cycles, instructions, every counter and meta entry) and survive
 *    reopening the store;
 *  - the content key must be a pure function of the simulation
 *    identity — and *sensitive* to everything that changes a result
 *    (program, machine config, engine, trace, sampling, fault
 *    stream), while ignoring what cannot (watchdog limits, worker
 *    count);
 *  - a torn tail — the journal cut off at ANY byte, as a SIGKILL
 *    mid-append leaves it — must be recovered: every complete record
 *    before the tear is served, the tear is truncated away;
 *  - interior corruption must stay fatal, in the same spirit as the
 *    PIPETRC/PIPECKPT fuzzing: a flipped bit anywhere must either be
 *    detected (FatalError naming an offset, or a recovered tail) or
 *    be provably harmless — never silently served as a wrong result.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "sim/config.hh"
#include "store/result_store.hh"

using namespace pipesim;
using namespace pipesim::store;

namespace
{

struct ScratchDir
{
    explicit ScratchDir(std::string p) : path(std::move(p))
    {
        std::filesystem::remove_all(path);
    }
    ~ScratchDir() { std::filesystem::remove_all(path); }
    std::string path;
};

SimResult
sampleResult(std::uint64_t cycles)
{
    SimResult r;
    r.totalCycles = cycles;
    r.instructions = cycles / 2;
    r.counters["fetch.hits"] = cycles + 1;
    r.counters["fetch.misses"] = 7;
    r.meta["engine"] = "cycle";
    r.meta["note"] = "round-trip fixture";
    return r;
}

std::string
sampleKey(char fill)
{
    return std::string(64, fill);
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              std::streamsize(bytes.size()));
}

ResultKeyParams
cycleParams()
{
    ResultKeyParams p;
    p.programSha256 = std::string(64, 'c');
    p.engine = "cycle";
    return p;
}

} // namespace

// ---------------------------------------------------------------------
// Round-trips and persistence.

TEST(ResultStoreTest, PutLookupRoundTripsEveryField)
{
    ScratchDir dir("store_test_roundtrip");
    ResultStore store(dir.path);
    EXPECT_EQ(store.entries(), 0u);
    EXPECT_EQ(store.recoveredBytes(), 0u);
    EXPECT_FALSE(store.lookup(sampleKey('a')).has_value());

    const SimResult r = sampleResult(1234);
    store.put(sampleKey('a'), "16-16:128", r);
    const auto back = store.lookup(sampleKey('a'));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->totalCycles, r.totalCycles);
    EXPECT_EQ(back->instructions, r.instructions);
    EXPECT_EQ(back->counters, r.counters);
    EXPECT_EQ(back->meta, r.meta);
}

TEST(ResultStoreTest, EntriesSurviveReopen)
{
    ScratchDir dir("store_test_reopen");
    {
        ResultStore store(dir.path);
        store.put(sampleKey('a'), "conv:64", sampleResult(10));
        store.put(sampleKey('b'), "conv:128", sampleResult(20));
    }
    ResultStore store(dir.path);
    EXPECT_EQ(store.entries(), 2u);
    EXPECT_EQ(store.recoveredBytes(), 0u);
    ASSERT_TRUE(store.lookup(sampleKey('b')).has_value());
    EXPECT_EQ(store.lookup(sampleKey('b'))->totalCycles, 20u);
    const auto order = store.entriesInOrder();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0]->label, "conv:64");
    EXPECT_EQ(order[1]->label, "conv:128");
}

TEST(ResultStoreTest, RepeatedKeyLastOneWins)
{
    ScratchDir dir("store_test_lastwins");
    {
        ResultStore store(dir.path);
        store.put(sampleKey('a'), "16-16:128", sampleResult(10));
        store.put(sampleKey('a'), "16-16:128", sampleResult(99));
        EXPECT_EQ(store.entries(), 1u);
        EXPECT_EQ(store.lookup(sampleKey('a'))->totalCycles, 99u);
    }
    // The journal replay applies the same last-wins rule.
    ResultStore store(dir.path);
    EXPECT_EQ(store.entries(), 1u);
    EXPECT_EQ(store.lookup(sampleKey('a'))->totalCycles, 99u);
}

TEST(ResultStoreTest, CompactDropsShadowedRecordsAtomically)
{
    ScratchDir dir("store_test_compact");
    {
        ResultStore store(dir.path);
        store.put(sampleKey('a'), "16-16:128", sampleResult(10));
        store.put(sampleKey('b'), "16-16:256", sampleResult(20));
        store.put(sampleKey('a'), "16-16:128", sampleResult(30));
        const auto before = std::filesystem::file_size(store.path());
        const std::uint64_t after = store.compact();
        EXPECT_LT(after, before);
        EXPECT_EQ(after, std::filesystem::file_size(store.path()));
        // Still appendable and still serving the latest values...
        EXPECT_EQ(store.lookup(sampleKey('a'))->totalCycles, 30u);
        store.put(sampleKey('c'), "16-16:512", sampleResult(40));
    } // close: the writer lock is single-holder, even in-process
    // ...including after a reopen of the compacted journal.
    ResultStore back(dir.path);
    EXPECT_EQ(back.entries(), 3u);
    EXPECT_EQ(back.recoveredBytes(), 0u);
    EXPECT_EQ(back.lookup(sampleKey('a'))->totalCycles, 30u);
    EXPECT_EQ(back.lookup(sampleKey('c'))->totalCycles, 40u);
    const auto order = back.entriesInOrder();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0]->keyHex, sampleKey('a')); // first-seen order
}

// ---------------------------------------------------------------------
// Content keys.

TEST(ResultStoreKeyTest, DeterministicAndSensitive)
{
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    const ResultKeyParams params = cycleParams();
    const std::string key = resultKeyHex(cfg, params);
    EXPECT_EQ(key.size(), 64u);
    EXPECT_EQ(key, resultKeyHex(cfg, params));

    // Machine configuration changes the key.
    SimConfig other = cfg;
    other.fetch = pipeConfigFor("16-16", 256);
    EXPECT_NE(resultKeyHex(other, params), key);

    // So does the program...
    ResultKeyParams p2 = params;
    p2.programSha256 = std::string(64, 'd');
    EXPECT_NE(resultKeyHex(cfg, p2), key);

    // ...the engine and its sampling parameters...
    ResultKeyParams p3 = params;
    p3.engine = "trace-exact";
    p3.traceSha256 = std::string(64, 'e');
    EXPECT_NE(resultKeyHex(cfg, p3), key);
    ResultKeyParams p4 = p3;
    p4.engine = "trace-sampled";
    p4.samplePeriod = 5000;
    EXPECT_NE(resultKeyHex(cfg, p4), resultKeyHex(cfg, p3));

    // ...and the point's fault stream.
    SimConfig faulty = cfg;
    faulty.fault.kinds = fault::Grant;
    faulty.fault.rate = 0.5;
    EXPECT_NE(resultKeyHex(faulty, params), key);
    SimConfig reseeded = faulty;
    reseeded.fault.seed = 999;
    EXPECT_NE(resultKeyHex(reseeded, params),
              resultKeyHex(faulty, params));
}

TEST(ResultStoreKeyTest, IgnoresWatchdogLimitsAndInactiveFaults)
{
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    const ResultKeyParams params = cycleParams();
    const std::string key = resultKeyHex(cfg, params);

    // Watchdogs only abort a run; they never change a completed
    // result, so they are not part of the identity.
    SimConfig limits = cfg;
    limits.maxCycles = 12345;
    limits.progressWindow = 999;
    EXPECT_EQ(resultKeyHex(limits, params), key);

    // A disabled injector's leftover seed/rate must not split keys.
    SimConfig inactive = cfg;
    inactive.fault.seed = 777;
    inactive.fault.rate = 0.9; // kinds == None: still disabled
    EXPECT_EQ(resultKeyHex(inactive, params), key);
}

// ---------------------------------------------------------------------
// Crash recovery: torn tails, damaged headers, interior corruption.

TEST(ResultStoreRecoveryTest, TornTailAtEveryByteIsRecovered)
{
    ScratchDir dir("store_test_torntail");
    std::vector<std::uint64_t> sizes; // journal size after each put
    {
        ResultStore store(dir.path);
        for (int i = 0; i < 3; ++i) {
            store.put(sampleKey(char('a' + i)), "pt", sampleResult(10u * (unsigned(i) + 1)));
            sizes.push_back(std::filesystem::file_size(store.path()));
        }
    }
    const std::string path = dir.path + "/results.piperes";
    const std::vector<std::uint8_t> full = readFile(path);
    ASSERT_EQ(full.size(), sizes.back());

    const std::size_t headerBytes = 20;
    for (std::size_t cut = headerBytes; cut < full.size(); ++cut) {
        writeFile(path, std::vector<std::uint8_t>(full.begin(),
                                                  full.begin() +
                                                      std::ptrdiff_t(cut)));
        ResultStore store(dir.path);
        // Every record wholly before the cut is served; the tear is
        // gone.
        std::size_t complete = 0;
        while (complete < sizes.size() && sizes[complete] <= cut)
            ++complete;
        EXPECT_EQ(store.entries(), complete) << "cut at byte " << cut;
        const std::size_t goodEnd =
            complete > 0 ? sizes[complete - 1] : headerBytes;
        EXPECT_EQ(store.recoveredBytes(), cut - goodEnd)
            << "cut at byte " << cut;
        for (std::size_t i = 0; i < complete; ++i) {
            const auto hit = store.lookup(sampleKey(char('a' + i)));
            ASSERT_TRUE(hit.has_value()) << "cut at byte " << cut;
            EXPECT_EQ(hit->totalCycles, 10u * (i + 1));
        }
    }
}

TEST(ResultStoreRecoveryTest, TruncationInsideHeaderStartsFresh)
{
    ScratchDir dir("store_test_shortheader");
    {
        ResultStore store(dir.path);
        store.put(sampleKey('a'), "pt", sampleResult(10));
    }
    const std::string path = dir.path + "/results.piperes";
    const std::vector<std::uint8_t> full = readFile(path);
    for (std::size_t cut = 0; cut < 20; ++cut) {
        writeFile(path, std::vector<std::uint8_t>(full.begin(),
                                                  full.begin() +
                                                      std::ptrdiff_t(cut)));
        ResultStore store(dir.path);
        EXPECT_EQ(store.entries(), 0u) << "cut at byte " << cut;
        EXPECT_EQ(store.recoveredBytes(), cut) << "cut at byte " << cut;
    }
}

TEST(ResultStoreRecoveryTest, DamagedHeaderIsFatal)
{
    ScratchDir dir("store_test_badheader");
    {
        ResultStore store(dir.path);
        store.put(sampleKey('a'), "pt", sampleResult(10));
    }
    const std::string path = dir.path + "/results.piperes";
    const std::vector<std::uint8_t> full = readFile(path);

    {
        auto bad = full;
        bad[0] ^= 0xff; // magic
        writeFile(path, bad);
        EXPECT_THROW(ResultStore(dir.path), FatalError);
    }
    {
        auto bad = full;
        bad[8] ^= 0x01; // version word -> header CRC mismatch
        writeFile(path, bad);
        EXPECT_THROW(ResultStore(dir.path), FatalError);
    }
    {
        auto bad = full;
        bad[16] ^= 0x01; // the CRC itself
        writeFile(path, bad);
        EXPECT_THROW(ResultStore(dir.path), FatalError);
    }
}

TEST(ResultStoreRecoveryTest, InteriorCorruptionIsFatalTailDamageIsNot)
{
    ScratchDir dir("store_test_interior");
    {
        ResultStore store(dir.path);
        store.put(sampleKey('a'), "pt", sampleResult(10));
        store.put(sampleKey('b'), "pt", sampleResult(20));
        store.put(sampleKey('c'), "pt", sampleResult(30));
    }
    const std::string path = dir.path + "/results.piperes";
    const std::vector<std::uint8_t> full = readFile(path);

    // A flipped payload byte in the FIRST record, with records after
    // it: the journal cannot be trusted.
    {
        auto bad = full;
        bad[28] ^= 0x01; // inside record 0's payload (after 20B header
                         // + 8B frame)
        writeFile(path, bad);
        try {
            ResultStore store(dir.path);
            FAIL() << "interior corruption must be fatal";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find("byte offset"),
                      std::string::npos);
        }
    }

    // The same flip in the LAST record is a torn tail: the damaged
    // record is dropped, everything before it is served.
    {
        auto bad = full;
        bad[bad.size() - 1] ^= 0x01;
        writeFile(path, bad);
        ResultStore store(dir.path);
        EXPECT_EQ(store.entries(), 2u);
        EXPECT_GT(store.recoveredBytes(), 0u);
        EXPECT_TRUE(store.lookup(sampleKey('a')).has_value());
        EXPECT_TRUE(store.lookup(sampleKey('b')).has_value());
        EXPECT_FALSE(store.lookup(sampleKey('c')).has_value());
    }
}

TEST(ResultStoreRecoveryTest, BitFlipFuzzNeverServesSilentCorruption)
{
    ScratchDir dir("store_test_fuzz");
    {
        ResultStore store(dir.path);
        store.put(sampleKey('a'), "pt", sampleResult(10));
        store.put(sampleKey('b'), "pt", sampleResult(20));
        store.put(sampleKey('c'), "pt", sampleResult(30));
    }
    const std::string path = dir.path + "/results.piperes";
    const std::vector<std::uint8_t> full = readFile(path);

    for (std::size_t i = 0; i < full.size(); ++i) {
        auto bad = full;
        bad[i] ^= 0x5a;
        writeFile(path, bad);
        try {
            ResultStore store(dir.path);
            // Opened: every entry it serves must be one of the
            // original, uncorrupted results (a record whose CRC still
            // matched) — never a silently altered value.
            EXPECT_LE(store.entries(), 3u) << "flip at byte " << i;
            for (char k = 'a'; k <= 'c'; ++k) {
                const auto hit = store.lookup(sampleKey(k));
                if (!hit)
                    continue;
                EXPECT_EQ(hit->totalCycles, 10u * unsigned(k - 'a' + 1))
                    << "flip at byte " << i;
                EXPECT_EQ(hit->counters,
                          sampleResult(hit->totalCycles).counters)
                    << "flip at byte " << i;
            }
        } catch (const FatalError &) {
            // Detected and refused: equally acceptable.
        }
    }
}

TEST(ResultStoreRecoveryTest, DescribeNamesTheEssentials)
{
    ScratchDir dir("store_test_describe");
    ResultStore store(dir.path);
    store.put(sampleKey('a'), "16-16:128", sampleResult(10));
    const std::string d = describeStore(store);
    EXPECT_NE(d.find("results.piperes"), std::string::npos);
    EXPECT_NE(d.find("16-16:128"), std::string::npos);
    EXPECT_NE(d.find("entries:"), std::string::npos);
    EXPECT_NE(d.find("clean"), std::string::npos);
    EXPECT_NE(d.find(sampleKey('a').substr(0, 16)), std::string::npos);
}

// ---------------------------------------------------------------------
// Single-writer discipline: an exclusive advisory flock on
// <dir>/results.piperes.lock, held for the store's lifetime.
// ---------------------------------------------------------------------

TEST(ResultStoreLockTest, SecondWriterIsRejectedWhileFirstIsOpen)
{
    ScratchDir dir("store_test_lock");
    ResultStore store(dir.path);
    store.put(sampleKey('a'), "pt", sampleResult(10));
    // flock is per open file description, so a second open in the
    // same process conflicts exactly like a second process would.
    try {
        ResultStore second(dir.path);
        FAIL() << "second writer must be rejected";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("already open for writing"),
                  std::string::npos)
            << msg;
        // The error names the holder (pid + program).
        EXPECT_NE(msg.find("pid "), std::string::npos) << msg;
        EXPECT_NE(msg.find("results.piperes.lock"), std::string::npos)
            << msg;
    }
    // The rejected open must not have disturbed the holder.
    EXPECT_TRUE(store.lookup(sampleKey('a')).has_value());
    store.put(sampleKey('b'), "pt", sampleResult(20));
    EXPECT_EQ(store.entries(), 2u);
}

TEST(ResultStoreLockTest, LockIsReleasedWhenTheWriterCloses)
{
    ScratchDir dir("store_test_lock_release");
    {
        ResultStore store(dir.path);
        store.put(sampleKey('a'), "pt", sampleResult(10));
    }
    ResultStore reopened(dir.path);
    EXPECT_EQ(reopened.entries(), 1u);
    EXPECT_TRUE(reopened.lookup(sampleKey('a')).has_value());
}

// ---------------------------------------------------------------------
// Reopen while appending: a reader that opens the journal while a
// writer is mid-append sees either the completed record or a
// recovered torn tail -- never a crash, never a corrupt earlier
// record.  The lock serializes live writers, so the mid-append states
// are reproduced by copying every append prefix into a fresh
// directory (exactly the bytes a reader could observe: fwrite is one
// record per call, but the kernel may expose any prefix).
// ---------------------------------------------------------------------

TEST(ResultStoreRecoveryTest, ReopenWhileAppendingSeesPrefixOrWhole)
{
    ScratchDir dir("store_test_midappend");
    std::uint64_t afterFirst = 0;
    {
        ResultStore store(dir.path);
        store.put(sampleKey('a'), "first", sampleResult(10));
        afterFirst = std::filesystem::file_size(store.path());
        store.put(sampleKey('b'), "second", sampleResult(20));
    }
    const std::vector<std::uint8_t> full =
        readFile(dir.path + "/results.piperes");
    ASSERT_GT(full.size(), afterFirst);

    // Every byte state the journal passes through while record 2 is
    // being appended, observed by a fresh reader.
    for (std::size_t seen = afterFirst; seen <= full.size(); ++seen) {
        ScratchDir reader("store_test_midappend_reader");
        std::filesystem::create_directories(reader.path);
        writeFile(reader.path + "/results.piperes",
                  std::vector<std::uint8_t>(full.begin(),
                                            full.begin() +
                                                std::ptrdiff_t(seen)));
        ResultStore store(reader.path); // must never throw
        // Record 1 is always intact and served bit-exactly.
        const auto first = store.lookup(sampleKey('a'));
        ASSERT_TRUE(first.has_value()) << "seen " << seen << " bytes";
        EXPECT_EQ(first->totalCycles, 10u);
        if (seen == full.size()) {
            // The append completed: both records served, tail clean.
            EXPECT_EQ(store.entries(), 2u);
            EXPECT_EQ(store.recoveredBytes(), 0u);
            EXPECT_EQ(store.lookup(sampleKey('b'))->totalCycles, 20u);
        } else {
            // Mid-append: the torn record is truncated away.
            EXPECT_EQ(store.entries(), 1u) << "seen " << seen;
            EXPECT_EQ(store.recoveredBytes(), seen - afterFirst)
                << "seen " << seen;
            EXPECT_FALSE(store.lookup(sampleKey('b')).has_value());
        }
    }
}
