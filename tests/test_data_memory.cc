#include <gtest/gtest.h>

#include "common/log.hh"

#include "assembler/assembler.hh"
#include "mem/data_memory.hh"

using namespace pipesim;

TEST(DataMemoryTest, WordReadWriteLittleEndian)
{
    DataMemory mem(64);
    mem.writeWord(0, 0x11223344);
    EXPECT_EQ(mem.readWord(0), 0x11223344u);
    EXPECT_EQ(mem.readByte(0), 0x44);
    EXPECT_EQ(mem.readByte(3), 0x11);
}

TEST(DataMemoryTest, ByteWritesComposeWords)
{
    DataMemory mem(64);
    mem.writeByte(4, 0xef);
    mem.writeByte(5, 0xbe);
    mem.writeByte(6, 0xad);
    mem.writeByte(7, 0xde);
    EXPECT_EQ(mem.readWord(4), 0xdeadbeefu);
}

TEST(DataMemoryTest, InitiallyZero)
{
    DataMemory mem(16);
    EXPECT_EQ(mem.readWord(0), 0u);
    EXPECT_EQ(mem.readWord(12), 0u);
}

TEST(DataMemoryTest, OutOfRangePanics)
{
    DataMemory mem(16);
    EXPECT_THROW(mem.readWord(13), PanicError);
    EXPECT_THROW(mem.writeWord(16, 0), PanicError);
    EXPECT_THROW(mem.readByte(16), PanicError);
    EXPECT_NO_THROW(mem.readWord(12));
}

TEST(DataMemoryTest, LoadProgramCopiesCodeAndData)
{
    Program p = assembler::assemble(R"(
        li r1, 1
        halt
    .data 0x100
        .word 0xcafe, 77
    )");
    DataMemory mem(0x200);
    mem.loadProgram(p);
    // Code bytes land at the code base.
    EXPECT_EQ(mem.readByte(0), p.code()[0]);
    EXPECT_EQ(mem.readWord(0x100), 0xcafeu);
    EXPECT_EQ(mem.readWord(0x104), 77u);
}

TEST(DataMemoryTest, LoadProgramOutOfRangePanics)
{
    Program p = assembler::assemble("halt\n.data 0x1000\n.word 1");
    DataMemory mem(0x100);
    EXPECT_THROW(mem.loadProgram(p), PanicError);
}
