/**
 * The live-points checkpoint store (replay/checkpoint.hh) and the
 * plan/execute sampled-replay split:
 *
 *  - window planning must deduplicate sparse-sync-point collisions
 *    (the double-measured-window bug) while preserving the tail
 *    clamping semantics;
 *  - machine state must round-trip bit-exactly through
 *    saveState/restoreState at every sync point — the restored
 *    machine's future is indistinguishable from the original's;
 *  - checkpointed and pooled sampled replay must be bit-identical to
 *    the serial path for any job count;
 *  - the PIPECKPT container must reject every corruption, truncation
 *    and cache-key mismatch with a FatalError, in the same spirit as
 *    the PIPETRC fuzzing in test_trace_format.cc.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/state_io.hh"
#include "mem/data_memory.hh"
#include "replay/capture.hh"
#include "replay/checkpoint.hh"
#include "replay/replay_engine.hh"
#include "replay/replay_machine.hh"
#include "replay/trace_format.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workloads/benchmark_program.hh"

using namespace pipesim;
using namespace pipesim::replay;

namespace
{

const workloads::Benchmark &
tinyBenchmark()
{
    static const auto bench = workloads::buildLivermoreBenchmark(0.02);
    return bench;
}

const Trace &
tinyTrace()
{
    static const Trace trace = captureTrace(
        SimConfig{}, tinyBenchmark().program, "checkpoint test");
    return trace;
}

/** A scratch directory wiped on construction and destruction. */
struct ScratchDir
{
    explicit ScratchDir(std::string p) : path(std::move(p))
    {
        std::filesystem::remove_all(path);
    }
    ~ScratchDir() { std::filesystem::remove_all(path); }
    std::string path;
};

CheckpointSet
sampleSet(std::size_t windows = 3)
{
    CheckpointSet set;
    set.meta.traceSha256 = std::string(64, 'a');
    set.meta.programSha256 = std::string(64, 'b');
    set.meta.configSha256 = std::string(64, 'c');
    set.meta.samplePeriod = 2000;
    set.meta.sampleWarmup = 300;
    set.meta.sampleMeasure = 700;
    set.meta.traceRecords = 10000;
    set.meta.provenance = "unit test";
    for (std::size_t i = 0; i < windows; ++i) {
        CheckpointWindow w;
        w.index = i;
        w.start = i * 2000;
        w.warmEnd = w.start + 300;
        for (std::size_t k = 0; k < 40 + i * 7; ++k)
            w.payload.push_back(std::uint8_t(k * 31 + i));
        set.windows.push_back(std::move(w));
    }
    return set;
}

ReplayOptions
sampledOptions()
{
    ReplayOptions opt;
    opt.samplePeriod = 2000;
    opt.sampleWarmup = 200;
    opt.sampleMeasure = 500;
    return opt;
}

/** Counters, cycle clock and cursor of @p m as one comparable blob. */
std::vector<std::pair<std::string, std::uint64_t>>
machineFingerprint(const ReplayMachine &m)
{
    std::vector<std::pair<std::string, std::uint64_t>> fp;
    fp.emplace_back("~now", m.now);
    fp.emplace_back("~cursor", m.pipe.cursor());
    fp.emplace_back("~retired", m.pipe.instructionsRetired());
    for (const auto &name : m.stats.counterNames())
        fp.emplace_back(name, m.stats.counterValue(name));
    return fp;
}

} // namespace

// ---------------------------------------------------------------------
// Window planning (satellite: the double-measured-window fix).

TEST(SampleWindowPlanTest, SparseSyncPointsDoNotDuplicateWindows)
{
    // Sync points {0, 50000} with period 20000: targets 20000 and
    // 40000 both round up to the sync point at 50000.  The old loop
    // measured that window twice, double-weighting it in the CPI
    // estimator and double-counting its deltas.
    ReplayOptions opt;
    opt.samplePeriod = 20000;
    opt.sampleWarmup = 300;
    opt.sampleMeasure = 700;
    const std::vector<std::size_t> sync = {0, 50000};
    const auto plan = planSampleWindows(80000, sync, opt);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0], (SampleWindow{0, 300, 1000}));
    EXPECT_EQ(plan[1], (SampleWindow{50000, 50300, 51000}));
}

TEST(SampleWindowPlanTest, StartsAreStrictlyIncreasing)
{
    const auto &trace = tinyTrace();
    const auto sync =
        computeSyncPoints(tinyBenchmark().program, trace);
    for (unsigned period : {1000u, 2000u, 5000u}) {
        ReplayOptions opt;
        opt.samplePeriod = period;
        opt.sampleWarmup = 200;
        opt.sampleMeasure = 500;
        const auto plan =
            planSampleWindows(trace.records.size(), sync, opt);
        ASSERT_FALSE(plan.empty());
        for (std::size_t i = 1; i < plan.size(); ++i)
            EXPECT_LT(plan[i - 1].start, plan[i].start)
                << "period " << period << " window " << i;
    }
}

TEST(SampleWindowPlanTest, TailWindowsClampAndEmptyTailStops)
{
    ReplayOptions opt;
    opt.samplePeriod = 400;
    opt.sampleWarmup = 300;
    opt.sampleMeasure = 100;
    // A window whose warm-up swallows the whole tail measures
    // nothing and ends the plan.
    const std::vector<std::size_t> sync = {0, 999};
    const auto plan = planSampleWindows(1000, sync, opt);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0], (SampleWindow{0, 300, 400}));
}

TEST(SampleWindowPlanTest, SingleWindowWhenPeriodExceedsTrace)
{
    ReplayOptions opt;
    opt.samplePeriod = 1000000;
    opt.sampleWarmup = 200;
    opt.sampleMeasure = 500;
    const std::vector<std::size_t> sync = {0, 10, 400};
    const auto plan = planSampleWindows(5000, sync, opt);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0], (SampleWindow{0, 200, 700}));
}

// ---------------------------------------------------------------------
// Machine-state round-trip property.

namespace
{

/**
 * Save a warm machine at a sync point, restore it into a fresh one,
 * run both the same distance, and require bit-identical clocks,
 * cursors and counters.
 */
void
expectRoundTripAt(const SimConfig &cfg, std::size_t syncPoint,
                  const std::string &what)
{
    const auto &program = tinyBenchmark().program;
    const auto &trace = tinyTrace();
    const std::size_t total = trace.records.size();
    const std::size_t warmTo =
        std::min<std::size_t>(syncPoint + 150, total);
    const std::size_t runTo = std::min<std::size_t>(warmTo + 300, total);

    DataMemory memA;
    memA.loadProgram(program);
    ReplayMachine a(cfg, program, trace, syncPoint, memA);
    a.fetch->reset(trace.records[syncPoint].pc);
    while (a.pipe.cursor() < warmTo && !a.done())
        a.step();

    StateWriter w;
    a.saveState(w);
    memA.saveDirtyPages(w);
    const std::vector<std::uint8_t> payload = w.take();

    DataMemory memB;
    memB.loadProgram(program);
    ReplayMachine b(cfg, program, trace, syncPoint, memB);
    StateReader r(payload, what);
    b.restoreState(r);
    memB.restoreDirtyPages(r);
    r.expectEnd();

    // Identical immediately after restore...
    EXPECT_EQ(machineFingerprint(a), machineFingerprint(b)) << what;

    // ...and still identical after running the same span, so every
    // piece of in-flight state (fill requests, queue contents, FPU
    // pipelines, latches) must have survived the round-trip.
    while (a.pipe.cursor() < runTo && !a.done())
        a.step();
    while (b.pipe.cursor() < runTo && !b.done())
        b.step();
    EXPECT_EQ(machineFingerprint(a), machineFingerprint(b)) << what;
}

} // namespace

TEST(CheckpointRoundTripTest, EverySyncPointEveryStrategy)
{
    const auto &program = tinyBenchmark().program;
    const auto &trace = tinyTrace();
    const auto sync = computeSyncPoints(program, trace);
    ASSERT_GT(sync.size(), 4u);

    std::vector<SimConfig> configs(3);
    configs[0].fetch = pipeConfigFor("16-16", 128);
    configs[1].fetch = conventionalConfigFor(128, 16);
    configs[2].fetch = tibConfigFor(128);

    // Sub-sample the sync points so the property stays cheap while
    // still covering start, middle and tail of the trace.
    const std::size_t step = std::max<std::size_t>(1, sync.size() / 12);
    for (const SimConfig &cfg : configs) {
        for (std::size_t i = 0; i < sync.size(); i += step) {
            expectRoundTripAt(cfg, sync[i],
                              cfg.fetchName() + " @ sync " +
                                  std::to_string(sync[i]));
        }
    }
}

TEST(CheckpointRoundTripTest, SlowPipelinedMemoryAndDcache)
{
    const auto &program = tinyBenchmark().program;
    const auto &trace = tinyTrace();
    const auto sync = computeSyncPoints(program, trace);
    ASSERT_GT(sync.size(), 2u);

    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    cfg.mem.accessTime = 6;
    cfg.mem.busWidthBytes = 8;
    cfg.mem.pipelined = true;
    cfg.mem.dcacheBytes = 256;
    const std::size_t mid = sync[sync.size() / 2];
    expectRoundTripAt(cfg, mid, "slow pipelined memory with dcache");
}

// ---------------------------------------------------------------------
// End-to-end: checkpointed sampled replay is bit-identical.

namespace
{

void
expectSameEstimate(const SimResult &a, const SimResult &b,
                   const std::string &what)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.counters, b.counters) << what;
    EXPECT_EQ(a.meta.at("sample_windows"), b.meta.at("sample_windows"))
        << what;
    EXPECT_EQ(a.meta.at("cpi_estimate"), b.meta.at("cpi_estimate"))
        << what;
    EXPECT_EQ(a.meta.at("cpi_rel_ci95"), b.meta.at("cpi_rel_ci95"))
        << what;
}

} // namespace

TEST(CheckpointedReplayTest, CreateRestoreBitIdenticalAtAnyJobCount)
{
    const auto &program = tinyBenchmark().program;
    const auto &trace = tinyTrace();
    ScratchDir dir("ckpt_test_store");
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);

    ReplayOptions serial = sampledOptions();
    const SimResult base = replayTrace(cfg, program, trace, serial);
    EXPECT_EQ(base.meta.at("ckpt_mode"), "off");

    ReplayOptions pooled = sampledOptions();
    pooled.jobs = 8;
    expectSameEstimate(base, replayTrace(cfg, program, trace, pooled),
                       "pooled cold windows");

    ReplayOptions create = sampledOptions();
    create.ckptDir = dir.path;
    create.ckptCreate = true;
    const SimResult created = replayTrace(cfg, program, trace, create);
    EXPECT_EQ(created.meta.at("ckpt_mode"), "create");
    expectSameEstimate(base, created, "checkpoint-create pass");
    EXPECT_TRUE(std::filesystem::exists(
        checkpointPath(dir.path, cfg)));

    for (unsigned jobs : {1u, 8u}) {
        ReplayOptions restore = sampledOptions();
        restore.ckptDir = dir.path;
        restore.jobs = jobs;
        const SimResult restored =
            replayTrace(cfg, program, trace, restore);
        EXPECT_EQ(restored.meta.at("ckpt_mode"), "restore");
        expectSameEstimate(base, restored,
                           "restore at jobs " + std::to_string(jobs));
    }
}

TEST(CheckpointedReplayTest, SingleWindowCiIsNotApplicable)
{
    // One measured window has no CPI spread: the confidence interval
    // must render as "n/a", not a fake 0.
    const auto &program = tinyBenchmark().program;
    const auto &trace = tinyTrace();
    ReplayOptions opt;
    opt.samplePeriod = 1000000; // one window at the first sync point
    opt.sampleWarmup = 200;
    opt.sampleMeasure = 500;
    const SimResult r = replayTrace(SimConfig{}, program, trace, opt);
    EXPECT_EQ(r.meta.at("sample_windows"), "1");
    EXPECT_EQ(r.meta.at("cpi_rel_ci95"), "n/a");

    // Multi-window runs still report a numeric interval.
    const SimResult many =
        replayTrace(SimConfig{}, program, trace, sampledOptions());
    EXPECT_GT(std::stoul(many.meta.at("sample_windows")), 1u);
    EXPECT_NO_THROW(std::stod(many.meta.at("cpi_rel_ci95")));
}

TEST(CheckpointedReplayTest, MismatchedKeyIsFatal)
{
    const auto &program = tinyBenchmark().program;
    const auto &trace = tinyTrace();
    ScratchDir dir("ckpt_test_mismatch");
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);

    ReplayOptions create = sampledOptions();
    create.ckptDir = dir.path;
    create.ckptCreate = true;
    replayTrace(cfg, program, trace, create);

    // A different machine config hashes to a different file: missing.
    SimConfig other = cfg;
    other.fetch = pipeConfigFor("16-16", 256);
    ReplayOptions restore = sampledOptions();
    restore.ckptDir = dir.path;
    EXPECT_THROW(replayTrace(other, program, trace, restore),
                 FatalError);

    // Same config but different sampling parameters: the stored key
    // must be rejected, not silently reused.
    ReplayOptions different = restore;
    different.samplePeriod = 3000;
    EXPECT_THROW(replayTrace(cfg, program, trace, different),
                 FatalError);
}

TEST(CheckpointedReplayTest, MissingCheckpointIsFatal)
{
    ReplayOptions opt = sampledOptions();
    opt.ckptDir = "no_such_ckpt_dir";
    EXPECT_THROW(replayTrace(SimConfig{}, tinyBenchmark().program,
                             tinyTrace(), opt),
                 FatalError);
}

// ---------------------------------------------------------------------
// Container format: round-trips and corruption fuzzing.

TEST(CheckpointFormatTest, ConfigHashDistinguishesConfigs)
{
    SimConfig a, b;
    a.fetch = pipeConfigFor("16-16", 128);
    b.fetch = pipeConfigFor("16-16", 256);
    EXPECT_EQ(configSha256(a), configSha256(a));
    EXPECT_NE(configSha256(a), configSha256(b));
    EXPECT_EQ(configSha256(a).size(), 64u);

    SimConfig c = a;
    c.mem.pipelined = !c.mem.pipelined;
    EXPECT_NE(configSha256(a), configSha256(c));
    SimConfig d = a;
    d.cpu.ldqEntries += 1;
    EXPECT_NE(configSha256(a), configSha256(d));

    const std::string path = checkpointPath("store", a);
    EXPECT_EQ(path,
              "store/ckpt-" + configSha256(a).substr(0, 16) +
                  ".pipeckpt");
}

TEST(CheckpointFormatTest, EncodeDecodeRoundTrip)
{
    CheckpointSet set = sampleSet(5);
    const auto bytes = encodeCheckpoint(set);
    EXPECT_FALSE(set.sha256.empty());
    const CheckpointSet back = decodeCheckpoint(bytes, "test");
    EXPECT_EQ(back.meta.traceSha256, set.meta.traceSha256);
    EXPECT_EQ(back.meta.programSha256, set.meta.programSha256);
    EXPECT_EQ(back.meta.configSha256, set.meta.configSha256);
    EXPECT_EQ(back.meta.samplePeriod, set.meta.samplePeriod);
    EXPECT_EQ(back.meta.sampleWarmup, set.meta.sampleWarmup);
    EXPECT_EQ(back.meta.sampleMeasure, set.meta.sampleMeasure);
    EXPECT_EQ(back.meta.traceRecords, set.meta.traceRecords);
    EXPECT_EQ(back.meta.provenance, set.meta.provenance);
    EXPECT_EQ(back.sha256, set.sha256);
    ASSERT_EQ(back.windows.size(), set.windows.size());
    for (std::size_t i = 0; i < set.windows.size(); ++i) {
        EXPECT_EQ(back.windows[i].index, set.windows[i].index);
        EXPECT_EQ(back.windows[i].start, set.windows[i].start);
        EXPECT_EQ(back.windows[i].warmEnd, set.windows[i].warmEnd);
        EXPECT_EQ(back.windows[i].payload, set.windows[i].payload);
    }
}

TEST(CheckpointFormatTest, FileRoundTripCreatesDirectories)
{
    ScratchDir dir("ckpt_test_format");
    CheckpointSet set = sampleSet(2);
    const std::string path = dir.path + "/nested/a.pipeckpt";
    writeCheckpoint(set, path);
    const CheckpointSet back = readCheckpoint(path);
    EXPECT_EQ(back.sha256, set.sha256);
    ASSERT_EQ(back.windows.size(), 2u);
    EXPECT_EQ(back.windows[1].payload, set.windows[1].payload);
}

TEST(CheckpointFormatTest, DescribeNamesTheEssentials)
{
    CheckpointSet set = sampleSet(4);
    encodeCheckpoint(set);
    const std::string d = describeCheckpoint(set);
    EXPECT_NE(d.find("4"), std::string::npos);
    EXPECT_NE(d.find(set.meta.provenance), std::string::npos);
    EXPECT_NE(d.find(set.sha256), std::string::npos);
    EXPECT_NE(d.find(set.meta.configSha256), std::string::npos);
}

TEST(CheckpointCorruptionTest, EveryTruncationIsFatal)
{
    CheckpointSet set = sampleSet(2);
    const auto bytes = encodeCheckpoint(set);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        std::vector<std::uint8_t> cut(bytes.begin(),
                                      bytes.begin() + len);
        EXPECT_THROW(decodeCheckpoint(cut, "truncated"), FatalError)
            << "truncated to " << len << " of " << bytes.size();
    }
}

TEST(CheckpointCorruptionTest, EverySingleByteFlipIsFatal)
{
    // The whole-file digest plus the header CRC and per-window CRCs
    // leave no byte whose corruption can decode: every flip must
    // raise FatalError — never a crash, hang, or a silently wrong
    // machine state.
    CheckpointSet set = sampleSet(2);
    const auto bytes = encodeCheckpoint(set);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        for (const std::uint8_t flip :
             {std::uint8_t(0xff), std::uint8_t(0x01)}) {
            std::vector<std::uint8_t> bad = bytes;
            bad[i] ^= flip;
            EXPECT_THROW(decodeCheckpoint(bad, "flipped"), FatalError)
                << "byte " << i << " xor 0x" << std::hex
                << unsigned(flip);
        }
    }
}

TEST(CheckpointCorruptionTest, GarbageFilesAreFatal)
{
    const std::vector<std::uint8_t> empty;
    EXPECT_THROW(decodeCheckpoint(empty, "empty"), FatalError);

    std::vector<std::uint8_t> noise(300);
    for (std::size_t i = 0; i < noise.size(); ++i)
        noise[i] = std::uint8_t(i * 41 + 7);
    EXPECT_THROW(decodeCheckpoint(noise, "noise"), FatalError);

    std::vector<std::uint8_t> magicOnly = {'P', 'I', 'P', 'E',
                                           'C', 'K', 'P', 'T'};
    EXPECT_THROW(decodeCheckpoint(magicOnly, "magic-only"), FatalError);
}

TEST(CheckpointCorruptionTest, MissingFileIsFatal)
{
    EXPECT_THROW(readCheckpoint("no/such/store.pipeckpt"), FatalError);
}

TEST(CheckpointCorruptionTest, DiagnosticNamesTheFile)
{
    std::vector<std::uint8_t> noise(80, 0xcd);
    try {
        decodeCheckpoint(noise, "my-ckpt-name");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("my-ckpt-name"),
                  std::string::npos);
    }
}

TEST(CheckpointCorruptionTest, CorruptPayloadFailsRestoreCleanly)
{
    // A payload that passes the container CRCs but holds impossible
    // component state (here: a corrupted byte re-checksummed) must
    // surface as FatalError from the state decoder, not UB.
    const auto &program = tinyBenchmark().program;
    const auto &trace = tinyTrace();
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);

    DataMemory mem;
    mem.loadProgram(program);
    const auto sync = computeSyncPoints(program, trace);
    ReplayMachine m(cfg, program, trace, sync[0], mem);
    m.fetch->reset(trace.records[sync[0]].pc);
    for (int i = 0; i < 200 && !m.done(); ++i)
        m.step();
    StateWriter w;
    m.saveState(w);
    std::vector<std::uint8_t> payload = w.take();

    // Truncation must never decode.
    for (const std::size_t len :
         {std::size_t(0), payload.size() / 3, payload.size() - 1}) {
        std::vector<std::uint8_t> cut(payload.begin(),
                                      payload.begin() + len);
        DataMemory mem2;
        mem2.loadProgram(program);
        ReplayMachine fresh(cfg, program, trace, sync[0], mem2);
        StateReader r(cut, "truncated payload");
        EXPECT_THROW(fresh.restoreState(r), FatalError)
            << "payload truncated to " << len;
    }
}
