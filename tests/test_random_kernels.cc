/**
 * Randomised end-to-end property test: generate random kernel IR
 * (random expression trees over random arrays/scalars/constants,
 * random strides and offsets, recurrences included), compile it with
 * the code generator, execute it on the simulated machine under a
 * randomly drawn configuration, and require bit-exact agreement with
 * the host reference interpreter.
 *
 * This exercises the queue discipline (LDQ FIFO pairing, SAQ/SDQ
 * pairing, FPU result FIFOs, spill correctness), the memory ordering
 * rules and the fetch strategies far beyond what the hand-written
 * kernels cover.  Seeds are fixed, so failures reproduce.
 */

#include <gtest/gtest.h>

#include <random>

#include "common/log.hh"
#include "sim/simulator.hh"
#include "workloads/benchmark_program.hh"
#include "workloads/reference.hh"

using namespace pipesim;
using namespace pipesim::codegen;

namespace
{

class KernelGen
{
  public:
    explicit KernelGen(unsigned seed) : _rng(seed) {}

    Kernel
    make()
    {
        Kernel k;
        k.id = 90;
        k.name = "random" + std::to_string(_rng());
        k.tripCount = 2 + _rng() % 9;
        k.outerReps = 1 + _rng() % 3;

        const unsigned num_arrays = 2 + _rng() % 4;
        const unsigned max_off = 4;
        for (unsigned i = 0; i < num_arrays; ++i) {
            // Elements must cover stride*trip + offset for stride <= 2.
            k.arrays.push_back(ArrayDecl{
                "a" + std::to_string(i),
                2 * k.tripCount + max_off + 2});
        }
        const unsigned num_scalars = _rng() % 4;
        for (unsigned i = 0; i < num_scalars; ++i) {
            k.scalars.push_back(ScalarDecl{
                "s" + std::to_string(i),
                0.01f + 0.2f * float(_rng() % 8),
                (_rng() % 2) == 0});
        }

        const unsigned num_stmts = 1 + _rng() % 4;
        for (unsigned i = 0; i < num_stmts; ++i)
            k.body.push_back(makeStatement(k));
        return k;
    }

    unsigned
    pick(unsigned n)
    {
        return _rng() % n;
    }

  private:
    Statement
    makeStatement(const Kernel &k)
    {
        // Mostly array targets; occasional scalar target when one
        // exists.
        const unsigned depth = 1 + pick(4);
        FExprPtr value = makeExpr(k, depth);
        if (!k.scalars.empty() && pick(5) == 0)
            return assignScalar(k.scalars[pick(unsigned(
                                    k.scalars.size()))].name,
                                value);
        return assign(randomRef(k), value);
    }

    ArrayRef
    randomRef(const Kernel &k)
    {
        ArrayRef r;
        r.array = k.arrays[pick(unsigned(k.arrays.size()))].name;
        r.stride = 1 + pick(2);
        r.offset = int(pick(5));
        return r;
    }

    FExprPtr
    makeExpr(const Kernel &k, unsigned depth)
    {
        if (depth == 0) {
            switch (pick(3)) {
              case 0:
                if (!k.scalars.empty())
                    return scalar(k.scalars[pick(unsigned(
                                      k.scalars.size()))].name);
                [[fallthrough]];
              case 1:
                return cnst(0.125f * float(1 + pick(8)));
              default: {
                const ArrayRef r = const_cast<KernelGen *>(this)
                                       ->randomRef(k);
                return ref(r.array, r.stride, r.offset);
              }
            }
        }
        FExprPtr l = makeExpr(k, depth - 1);
        FExprPtr r = makeExpr(k, pick(depth));
        // Avoid division (quotients can overflow to inf across
        // outer reps and still match, but keep values tame).
        switch (pick(3)) {
          case 0: return add(l, r);
          case 1: return sub(l, r);
          default: return mul(l, r);
        }
    }

    std::mt19937 _rng;
};

SimConfig
randomConfig(std::mt19937 &rng, isa::FormatMode mode)
{
    SimConfig cfg;
    const char *strategies[] = {"conv", "8-8", "16-16", "16-32",
                                "32-32"};
    const std::string strategy = strategies[rng() % 5];
    const unsigned sizes[] = {16, 32, 64, 128, 256};
    unsigned cache = sizes[rng() % 5];
    if (strategy == "conv") {
        // A single-frame conventional cache cannot hold compact
        // instructions straddling its only line.
        if (mode == isa::FormatMode::Compact)
            cache = std::max(cache, 32u);
        cfg.fetch = conventionalConfigFor(cache, 16);
    } else {
        const unsigned line = pipeConfigFor(strategy, 1024).lineBytes;
        cache = std::max(cache, line);
        cfg.fetch = pipeConfigFor(strategy, cache);
        cfg.fetch.offchipPolicy = (rng() % 2) == 0
                                      ? OffchipPolicy::TruePrefetch
                                      : OffchipPolicy::GuaranteedOnly;
    }
    const unsigned times[] = {1, 2, 3, 6};
    cfg.mem.accessTime = times[rng() % 4];
    cfg.mem.busWidthBytes = (rng() % 2) ? 4 : 8;
    cfg.mem.pipelined = (rng() % 2) == 0;
    cfg.mem.instructionPriority = (rng() % 2) == 0;
    // A third of the configs add the on-chip data cache extension.
    if (rng() % 3 == 0)
        cfg.mem.dcacheBytes = 64u << (rng() % 4);
    cfg.progressWindow = 200000;
    return cfg;
}

} // namespace

class RandomKernel : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RandomKernel, MatchesReferenceUnderRandomConfig)
{
    const unsigned seed = GetParam();
    KernelGen gen(seed);
    const Kernel kernel = gen.make();

    std::vector<Kernel> kernels{kernel};
    codegen::CodeGenOptions opts;
    std::mt19937 rng(seed ^ 0x9e3779b9u);
    opts.ldqWindow = 1 + rng() % 7;
    opts.maxDelaySlots = rng() % 8;
    opts.mode = (rng() % 2) ? isa::FormatMode::Compact
                            : isa::FormatMode::Fixed32;

    const auto bench = workloads::buildBenchmark(kernels, opts);
    const SimConfig cfg = randomConfig(rng, opts.mode);

    Simulator sim(cfg, bench.program);
    ASSERT_NO_THROW(sim.run())
        << "seed " << seed << " strategy " << cfg.fetchName();

    std::string diag;
    EXPECT_TRUE(workloads::verifyAgainstReference(
        sim.dataMemory(), bench.kernels[0], bench.codeInfo[0], &diag))
        << "seed " << seed << ": " << diag;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernel,
                         ::testing::Range(0u, 60u));

TEST(RandomKernelSuite, ManyKernelsOneProgram)
{
    // Several random kernels back to back in one program, like the
    // real benchmark.
    std::vector<Kernel> kernels;
    for (unsigned seed = 100; seed < 105; ++seed) {
        KernelGen gen(seed);
        Kernel k = gen.make();
        k.id = int(seed);
        k.name += "_k" + std::to_string(seed);
        kernels.push_back(k);
    }
    const auto bench = workloads::buildBenchmark(kernels);
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-32", 64);
    cfg.mem.accessTime = 6;
    Simulator sim(cfg, bench.program);
    sim.run();
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        std::string diag;
        EXPECT_TRUE(workloads::verifyAgainstReference(
            sim.dataMemory(), bench.kernels[i], bench.codeInfo[i],
            &diag))
            << diag;
    }
}
