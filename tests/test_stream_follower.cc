#include <gtest/gtest.h>

#include "common/log.hh"

#include "core/stream_follower.hh"

using namespace pipesim;
using isa::Instruction;
using isa::Opcode;

namespace
{

Instruction
plain(unsigned parcels = 2)
{
    Instruction i;
    i.op = Opcode::Nop;
    i.parcels = std::uint8_t(parcels);
    return i;
}

Instruction
pbr(unsigned count, unsigned parcels = 2)
{
    Instruction i;
    i.op = Opcode::Pbr;
    i.count = std::uint8_t(count);
    i.parcels = std::uint8_t(parcels);
    return i;
}

} // namespace

TEST(StreamFollower, SequentialAdvance)
{
    StreamFollower f;
    f.reset(0x100);
    EXPECT_EQ(f.nextAddr(), Addr(0x100));
    f.delivered(plain());
    EXPECT_EQ(f.nextAddr(), Addr(0x104));
    f.delivered(plain(1));
    EXPECT_EQ(f.nextAddr(), Addr(0x106));
    EXPECT_FALSE(f.blocked());
}

TEST(StreamFollower, TakenBranchAfterDelaySlots)
{
    StreamFollower f;
    f.reset(0);
    f.delivered(pbr(2));
    EXPECT_TRUE(f.hasPending());
    EXPECT_EQ(f.frontSlotsLeft(), 2u);
    f.resolved(true, 0x80);
    // Two delay slots still deliver sequentially.
    f.delivered(plain());
    EXPECT_EQ(f.nextAddr(), Addr(8));
    f.delivered(plain());
    // Redirect applies at the end of the slots.
    EXPECT_EQ(f.nextAddr(), Addr(0x80));
    EXPECT_FALSE(f.hasPending());
}

TEST(StreamFollower, NotTakenFallsThrough)
{
    StreamFollower f;
    f.reset(0);
    f.delivered(pbr(1));
    f.resolved(false, 0x80);
    f.delivered(plain());
    EXPECT_EQ(f.nextAddr(), Addr(8));
    EXPECT_FALSE(f.hasPending());
}

TEST(StreamFollower, BlocksAtUnresolvedRedirectPoint)
{
    StreamFollower f;
    f.reset(0);
    f.delivered(pbr(1));
    f.delivered(plain());
    EXPECT_TRUE(f.blocked());
    EXPECT_FALSE(f.nextAddr());
    EXPECT_EQ(f.frontRedirectAddr(), Addr(8));
    f.resolved(true, 0x40);
    EXPECT_EQ(f.nextAddr(), Addr(0x40));
}

TEST(StreamFollower, ZeroDelaySlotsBlocksImmediately)
{
    StreamFollower f;
    f.reset(0);
    f.delivered(pbr(0));
    EXPECT_TRUE(f.blocked());
    f.resolved(true, 0x20);
    EXPECT_EQ(f.nextAddr(), Addr(0x20));
}

TEST(StreamFollower, ResolutionBeforeSlotsDrainDoesNotJumpEarly)
{
    StreamFollower f;
    f.reset(0);
    f.delivered(pbr(3));
    f.resolved(true, 0x100);
    EXPECT_EQ(f.nextAddr(), Addr(4)); // still in delay slots
    f.delivered(plain());
    f.delivered(plain());
    EXPECT_EQ(f.nextAddr(), Addr(12));
    f.delivered(plain());
    EXPECT_EQ(f.nextAddr(), Addr(0x100));
}

TEST(StreamFollower, DeliveryWhileBlockedPanics)
{
    StreamFollower f;
    f.reset(0);
    f.delivered(pbr(0));
    EXPECT_THROW(f.delivered(plain()), PanicError);
}

TEST(StreamFollower, ResolutionWithNothingPendingPanics)
{
    StreamFollower f;
    f.reset(0);
    EXPECT_THROW(f.resolved(true, 0), PanicError);
}

TEST(StreamFollower, TwoPendingBranchesResolveInOrder)
{
    StreamFollower f;
    f.reset(0);
    f.delivered(pbr(2)); // PBR1 at 0
    f.delivered(plain());   // slot 1 of PBR1
    f.delivered(pbr(4)); // PBR2: consumes slot 2 of PBR1 (not taken path)
    // PBR1 has 0 slots left -> blocked until resolution.
    EXPECT_TRUE(f.blocked());
    f.resolved(false, 0); // PBR1 falls through
    EXPECT_EQ(f.nextAddr(), Addr(12));
    EXPECT_TRUE(f.hasPending()); // PBR2 still pending
    // PBR2's countdown began when it reached the front.
    f.delivered(plain());
    f.delivered(plain());
    f.delivered(plain());
    f.delivered(plain());
    EXPECT_TRUE(f.blocked());
    f.resolved(true, 0x400);
    EXPECT_EQ(f.nextAddr(), Addr(0x400));
}

TEST(StreamFollower, FrontIdsAreDistinct)
{
    StreamFollower f;
    f.reset(0);
    f.delivered(pbr(1));
    const auto id1 = f.frontId();
    f.resolved(false, 0);
    f.delivered(plain());
    f.delivered(pbr(1));
    EXPECT_NE(f.frontId(), id1);
}

TEST(StreamFollower, StreamPosTracksDeliveries)
{
    StreamFollower f;
    f.reset(0x10);
    EXPECT_EQ(f.streamPos(), Addr(0x10));
    f.delivered(plain());
    EXPECT_EQ(f.streamPos(), Addr(0x14));
}

TEST(StreamFollower, ResetClearsPending)
{
    StreamFollower f;
    f.reset(0);
    f.delivered(pbr(0));
    f.reset(0x50);
    EXPECT_FALSE(f.hasPending());
    EXPECT_EQ(f.nextAddr(), Addr(0x50));
}

TEST(StreamFollower, FrontResolvedAccessors)
{
    StreamFollower f;
    f.reset(0);
    f.delivered(pbr(2));
    EXPECT_FALSE(f.frontResolved());
    EXPECT_FALSE(f.frontTaken());
    f.resolved(true, 0x88);
    EXPECT_TRUE(f.frontResolved());
    EXPECT_TRUE(f.frontTaken());
    EXPECT_EQ(f.frontTarget(), Addr(0x88));
}
