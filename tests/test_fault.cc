/**
 * Deterministic fault-injection harness tests (fault/fault.hh):
 * configuration parsing, stream determinism, per-point seed
 * derivation, and the end-to-end recovery/abort paths through the
 * memory system and fetch units.
 */

#include <gtest/gtest.h>

#include "common/abort.hh"
#include "common/log.hh"

#include "fault/fault.hh"
#include "sim/simulator.hh"
#include "workloads/benchmark_program.hh"

using namespace pipesim;

namespace
{

const workloads::Benchmark &
tinyBenchmark()
{
    static const auto bench = workloads::buildLivermoreBenchmark(0.02);
    return bench;
}

SimConfig
faultyConfig(unsigned kinds, double rate, std::uint64_t seed)
{
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 32); // small: plenty of refills
    cfg.mem.accessTime = 2;
    cfg.fault.kinds = kinds;
    cfg.fault.rate = rate;
    cfg.fault.seed = seed;
    return cfg;
}

} // namespace

TEST(FaultConfigTest, KindStringsRoundTrip)
{
    using namespace pipesim::fault;
    EXPECT_EQ(faultKindsFromString("none"), unsigned(None));
    EXPECT_EQ(faultKindsFromString(""), unsigned(None));
    EXPECT_EQ(faultKindsFromString("all"), unsigned(All));
    EXPECT_EQ(faultKindsFromString("latency"), unsigned(Latency));
    EXPECT_EQ(faultKindsFromString("grant,parity"),
              unsigned(Grant | Parity));
    EXPECT_EQ(faultKindsToString(Latency | Parity), "latency,parity");
    EXPECT_EQ(faultKindsToString(None), "none");
    EXPECT_EQ(faultKindsFromString(faultKindsToString(All)),
              unsigned(All));
    EXPECT_THROW(faultKindsFromString("cosmic-rays"), FatalError);
}

TEST(FaultInjectorTest, DecisionsAreDeterministic)
{
    fault::FaultConfig cfg;
    cfg.kinds = fault::All;
    cfg.rate = 0.25;
    cfg.seed = 123;
    fault::FaultInjector a(cfg), b(cfg);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.responseJitter(), b.responseJitter());
        EXPECT_EQ(a.delayGrant(), b.delayGrant());
        EXPECT_EQ(a.corruptFill(), b.corruptFill());
    }
    EXPECT_EQ(a.latencyFaults(), b.latencyFaults());
    EXPECT_EQ(a.grantDelays(), b.grantDelays());
    EXPECT_EQ(a.parityFaults(), b.parityFaults());
    EXPECT_GT(a.latencyFaults() + a.grantDelays() + a.parityFaults(),
              0u);
}

TEST(FaultInjectorTest, DisabledKindsNeverFire)
{
    fault::FaultConfig cfg;
    cfg.kinds = fault::None;
    cfg.rate = 1.0;
    fault::FaultInjector inj(cfg);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(inj.responseJitter(), 0u);
        EXPECT_FALSE(inj.delayGrant());
        EXPECT_FALSE(inj.corruptFill());
    }
}

TEST(FaultInjectorTest, PointSeedsAreIndependent)
{
    using fault::FaultInjector;
    const auto s = FaultInjector::derivePointSeed(1, "16-16", 64);
    EXPECT_EQ(FaultInjector::derivePointSeed(1, "16-16", 64), s);
    EXPECT_NE(FaultInjector::derivePointSeed(1, "16-16", 128), s);
    EXPECT_NE(FaultInjector::derivePointSeed(1, "8-8", 64), s);
    EXPECT_NE(FaultInjector::derivePointSeed(2, "16-16", 64), s);
    EXPECT_NE(s, 0u);
}

TEST(FaultRunTest, LatencyJitterIsReproducibleAndSlows)
{
    const auto clean = runSimulation(faultyConfig(fault::None, 0.0, 7),
                                     tinyBenchmark().program);
    const auto a = runSimulation(faultyConfig(fault::Latency, 0.2, 7),
                                 tinyBenchmark().program);
    const auto b = runSimulation(faultyConfig(fault::Latency, 0.2, 7),
                                 tinyBenchmark().program);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.counters, b.counters);
    EXPECT_GT(a.counter("fault.latency_faults"), 0u);
    EXPECT_GT(a.totalCycles, clean.totalCycles);
    EXPECT_EQ(a.instructions, clean.instructions);
}

TEST(FaultRunTest, ParityErrorsAreRetriedAndRecovered)
{
    // A modest parity rate corrupts some fills; the fetch unit
    // re-requests each corrupted line and the program still runs to
    // a correct completion.
    const auto clean = runSimulation(faultyConfig(fault::None, 0.0, 11),
                                     tinyBenchmark().program);
    const auto res = runSimulation(faultyConfig(fault::Parity, 0.05, 11),
                                   tinyBenchmark().program);
    EXPECT_GT(res.counter("fault.parity_faults"), 0u);
    EXPECT_GT(res.counter("fetch.parity_retries"), 0u);
    EXPECT_EQ(res.instructions, clean.instructions);
    EXPECT_GT(res.totalCycles, clean.totalCycles);
}

TEST(FaultRunTest, UnrecoverableParityAborts)
{
    // Every fill corrupted: the retry budget runs out and the fetch
    // unit raises SimAbort with the machine snapshot attached.
    try {
        runSimulation(faultyConfig(fault::Parity, 1.0, 3),
                      tinyBenchmark().program);
        FAIL() << "expected SimAbort";
    } catch (const SimAbort &e) {
        EXPECT_NE(std::string(e.what()).find("parity"),
                  std::string::npos);
        EXPECT_TRUE(e.hasSnapshot());
    }
}

TEST(FaultRunTest, PermanentGrantDelayDeadlocks)
{
    SimConfig cfg = faultyConfig(fault::Grant, 1.0, 5);
    cfg.progressWindow = 20000; // detect the wedge quickly
    try {
        runSimulation(cfg, tinyBenchmark().program);
        FAIL() << "expected SimAbort";
    } catch (const SimAbort &e) {
        EXPECT_NE(std::string(e.what()).find("deadlocked"),
                  std::string::npos);
        ASSERT_TRUE(e.hasSnapshot());
        // The snapshot shows the memory system holding the wedge.
        EXPECT_NE(e.snapshot().memoryState.find("input bus"),
                  std::string::npos);
    }
}

TEST(FaultRunTest, ConventionalFetchRecoversParityToo)
{
    SimConfig cfg;
    cfg.fetch = conventionalConfigFor(64, 16);
    cfg.mem.accessTime = 2;
    cfg.fault.kinds = fault::Parity;
    cfg.fault.rate = 0.05;
    cfg.fault.seed = 11;
    SimConfig clean = cfg;
    clean.fault.kinds = fault::None;
    const auto a = runSimulation(cfg, tinyBenchmark().program);
    const auto b = runSimulation(clean, tinyBenchmark().program);
    EXPECT_GT(a.counter("fetch.parity_retries"), 0u);
    EXPECT_EQ(a.instructions, b.instructions);
}
