/**
 * Property-style tests: invariants that must hold across the whole
 * simulation parameter space, checked with parameterised sweeps.
 *
 * The central invariant of an execution-driven timing simulator is
 * that *timing parameters never change architectural results*: any
 * combination of fetch strategy, cache geometry, memory latency, bus
 * width and queue sizes must produce bit-identical memory contents
 * and dynamic instruction counts, differing only in cycles.
 */

#include <gtest/gtest.h>

#include "common/log.hh"

#include <tuple>

#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "workloads/benchmark_program.hh"
#include "workloads/reference.hh"

using namespace pipesim;

namespace
{

const workloads::Benchmark &
bench()
{
    static const auto b = workloads::buildLivermoreBenchmark(0.03);
    return b;
}

struct RunOutcome
{
    SimResult result;
    std::vector<Word> finalData;
};

RunOutcome
runConfig(const SimConfig &cfg)
{
    Simulator sim(cfg, bench().program);
    RunOutcome out;
    out.result = sim.run();
    // Snapshot the interesting data range (arrays + scalar slots).
    for (Addr a = 0x6000; a < 0x7f00; a += wordBytes)
        out.finalData.push_back(sim.dataMemory().readWord(a));
    for (const auto &info : bench().codeInfo)
        for (const auto &[name, base] : info.arrayAddrs)
            out.finalData.push_back(sim.dataMemory().readWord(base));
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Architectural results are invariant across timing parameters.
// ---------------------------------------------------------------------

using TimingParams =
    std::tuple<std::string /*strategy*/, unsigned /*cache*/,
               unsigned /*accessTime*/, unsigned /*busWidth*/,
               bool /*pipelined*/>;

class TimingInvariance : public ::testing::TestWithParam<TimingParams>
{
  public:
    static const RunOutcome &
    baseline()
    {
        static const RunOutcome out = [] {
            SimConfig cfg;
            cfg.fetch = pipeConfigFor("16-16", 128);
            return runConfig(cfg);
        }();
        return out;
    }
};

TEST_P(TimingInvariance, SameResultsDifferentTiming)
{
    const auto &[strategy, cache, access, bus, pipelined] = GetParam();
    SimConfig cfg;
    cfg.fetch = strategy == "conv" ? conventionalConfigFor(cache, 16)
                                   : pipeConfigFor(strategy, cache);
    cfg.mem.accessTime = access;
    cfg.mem.busWidthBytes = bus;
    cfg.mem.pipelined = pipelined;
    const RunOutcome out = runConfig(cfg);
    EXPECT_EQ(out.result.instructions, baseline().result.instructions);
    EXPECT_EQ(out.finalData, baseline().finalData);
}

namespace
{

std::string
timingParamName(const ::testing::TestParamInfo<TimingParams> &info)
{
    std::string name =
        std::get<0>(info.param) + "_c" +
        std::to_string(std::get<1>(info.param)) + "_t" +
        std::to_string(std::get<2>(info.param)) + "_b" +
        std::to_string(std::get<3>(info.param)) +
        (std::get<4>(info.param) ? "_pipe" : "_nonpipe");
    for (char &ch : name)
        if (ch == '-')
            ch = 'x';
    return name;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    Sweep, TimingInvariance,
    ::testing::Combine(::testing::Values("conv", "8-8", "16-32"),
                       ::testing::Values(32u, 128u),
                       ::testing::Values(1u, 6u),
                       ::testing::Values(4u, 8u),
                       ::testing::Values(false, true)),
    timingParamName);

// ---------------------------------------------------------------------
// Queue sizes change timing but never results (and never deadlock).
// ---------------------------------------------------------------------

class QueueSizeInvariance
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(QueueSizeInvariance, SameResultsDifferentQueues)
{
    const auto &[ldq, sdq] = GetParam();
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 64);
    cfg.cpu.ldqEntries = ldq;
    cfg.cpu.laqEntries = ldq;
    cfg.cpu.sdqEntries = sdq;
    cfg.cpu.saqEntries = sdq;
    cfg.mem.accessTime = 3;
    const RunOutcome out = runConfig(cfg);
    EXPECT_EQ(out.finalData, TimingInvariance::baseline().finalData);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QueueSizeInvariance,
                         ::testing::Combine(::testing::Values(8u, 12u,
                                                              16u),
                                            ::testing::Values(2u, 4u,
                                                              8u)));

// ---------------------------------------------------------------------
// Determinism: identical configs give identical cycle counts.
// ---------------------------------------------------------------------

TEST(Determinism, RepeatedRunsIdentical)
{
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("32-32", 64);
    cfg.mem.accessTime = 6;
    cfg.mem.pipelined = true;
    const auto a = runConfig(cfg);
    const auto b = runConfig(cfg);
    EXPECT_EQ(a.result.totalCycles, b.result.totalCycles);
    EXPECT_EQ(a.result.counters, b.result.counters);
    EXPECT_EQ(a.finalData, b.finalData);
}

// ---------------------------------------------------------------------
// Timing sanity properties on the paper's parameters.
// ---------------------------------------------------------------------

class MemSpeedMonotonic : public ::testing::TestWithParam<std::string>
{
};

TEST_P(MemSpeedMonotonic, SlowerMemoryNeverFaster)
{
    SimConfig cfg;
    const std::string strategy = GetParam();
    cfg.fetch = strategy == "conv" ? conventionalConfigFor(64, 16)
                                   : pipeConfigFor(strategy, 64);
    Cycle last = 0;
    for (unsigned access : {1u, 2u, 3u, 6u}) {
        cfg.mem.accessTime = access;
        const auto res = runSimulation(cfg, bench().program);
        EXPECT_GE(res.totalCycles, last) << "access " << access;
        last = res.totalCycles;
    }
}

namespace
{

std::string
strategyName(const ::testing::TestParamInfo<std::string> &info)
{
    std::string name = info.param;
    for (char &c : name)
        if (c == '-')
            c = 'x';
    return name;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Strategies, MemSpeedMonotonic,
                         ::testing::Values("conv", "8-8", "16-16",
                                           "16-32", "32-32"),
                         strategyName);

TEST(TimingSanity, WiderBusNeverSlower)
{
    for (const char *strategy : {"conv", "16-16"}) {
        SimConfig cfg;
        cfg.fetch = std::string(strategy) == "conv"
                        ? conventionalConfigFor(64, 16)
                        : pipeConfigFor(strategy, 64);
        cfg.mem.accessTime = 6;
        cfg.mem.busWidthBytes = 4;
        const auto narrow = runSimulation(cfg, bench().program);
        cfg.mem.busWidthBytes = 8;
        const auto wide = runSimulation(cfg, bench().program);
        EXPECT_LE(wide.totalCycles, narrow.totalCycles) << strategy;
    }
}

TEST(TimingSanity, CyclesAtLeastInstructions)
{
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 1024);
    const auto res = runSimulation(cfg, bench().program);
    EXPECT_GE(res.totalCycles, res.instructions);
}

TEST(TimingSanity, TruePrefetchNeverSlowerThanGuaranteedOnly)
{
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 32);
    cfg.mem.accessTime = 6;
    cfg.fetch.offchipPolicy = OffchipPolicy::GuaranteedOnly;
    const auto guarded = runSimulation(cfg, bench().program);
    cfg.fetch.offchipPolicy = OffchipPolicy::TruePrefetch;
    const auto free_run = runSimulation(cfg, bench().program);
    EXPECT_LE(free_run.totalCycles, guarded.totalCycles);
}

TEST(TimingSanity, FetchStarveCyclesBoundedByTotal)
{
    SimConfig cfg;
    cfg.fetch = conventionalConfigFor(16, 16);
    cfg.mem.accessTime = 6;
    const auto res = runSimulation(cfg, bench().program);
    EXPECT_LT(res.counter("cpu.fetch_starve_cycles"), res.totalCycles);
}

// ---------------------------------------------------------------------
// Off-chip traffic properties.
// ---------------------------------------------------------------------

TEST(TrafficProperties, LargerCacheReducesOffchipIFetches)
{
    SimConfig small;
    small.fetch = pipeConfigFor("8-8", 16);
    SimConfig large;
    large.fetch = pipeConfigFor("8-8", 1024);
    const auto s = runSimulation(small, bench().program);
    const auto l = runSimulation(large, bench().program);
    const auto traffic = [](const SimResult &r) {
        return r.counter("fetch.offchip_demand_lines") +
               r.counter("fetch.offchip_prefetch_lines");
    };
    EXPECT_GT(traffic(s), traffic(l));
}

TEST(TrafficProperties, DataRequestCountIndependentOfICache)
{
    // Loads/stores depend only on the program, not on I-fetch.
    SimConfig a;
    a.fetch = pipeConfigFor("8-8", 16);
    SimConfig b;
    b.fetch = conventionalConfigFor(512, 16);
    const auto ra = runSimulation(a, bench().program);
    const auto rb = runSimulation(b, bench().program);
    EXPECT_EQ(ra.counter("cpu.loads"), rb.counter("cpu.loads"));
    EXPECT_EQ(ra.counter("cpu.stores"), rb.counter("cpu.stores"));
}

TEST(TrafficProperties, PbrCountsMatchLoopStructure)
{
    SimConfig cfg;
    cfg.fetch = pipeConfigFor("16-16", 128);
    const auto res = runSimulation(cfg, bench().program);
    // One not-taken PBR per inner loop exit; kernels without outer
    // loops have exactly one exit each.
    EXPECT_GE(res.counter("cpu.pbr_not_taken"), 14u);
    EXPECT_GT(res.counter("cpu.pbr_taken"),
              res.counter("cpu.pbr_not_taken"));
}
