#include <gtest/gtest.h>

#include "common/log.hh"

#include "assembler/assembler.hh"
#include "core/pipe_fetch.hh"
#include "mem/memory_system.hh"

using namespace pipesim;
using isa::Opcode;

namespace
{

/** Drives a fetch unit against a memory system, cycle by cycle. */
struct Harness
{
    Harness(const std::string &src, FetchConfig fcfg,
            MemSystemConfig mcfg = {})
        : program(assembler::assemble(src)), dataMem(1 << 16),
          sys(mcfg, dataMem), unit(fcfg, program, sys)
    {
        dataMem.loadProgram(program);
    }

    void
    step()
    {
        unit.tick(now);
        sys.tick(now);
        ++now;
    }

    /** Step until an instruction is ready; return it. */
    isa::FetchedInst
    pull(unsigned max_cycles = 100)
    {
        for (unsigned i = 0; i < max_cycles; ++i) {
            if (unit.instructionReady())
                return unit.take();
            step();
        }
        throw std::runtime_error("no instruction within limit");
    }

    Program program;
    DataMemory dataMem;
    MemorySystem sys;
    PipeFetchUnit unit;
    Cycle now = 0;
};

const char *straightLine = R"(
    li r1, 1
    li r2, 2
    add r3, r1, r2
    sub r4, r3, r1
    nop
    nop
    nop
    nop
    halt
)";

FetchConfig
cfg1616(unsigned cache = 128)
{
    FetchConfig f;
    f.strategy = FetchStrategy::Pipe;
    f.cacheBytes = cache;
    f.lineBytes = 16;
    f.iqBytes = 16;
    f.iqbBytes = 16;
    return f;
}

} // namespace

TEST(PipeFetch, DeliversProgramInOrder)
{
    Harness h(straightLine, cfg1616());
    const Opcode expect[] = {Opcode::Li, Opcode::Li, Opcode::Add,
                             Opcode::Sub, Opcode::Nop, Opcode::Nop,
                             Opcode::Nop, Opcode::Nop, Opcode::Halt};
    Addr pc = 0;
    for (Opcode op : expect) {
        const auto fi = h.pull();
        EXPECT_EQ(fi.inst.op, op);
        EXPECT_EQ(fi.pc, pc);
        pc += fi.inst.sizeBytes();
    }
}

TEST(PipeFetch, FirstInstructionWaitsForMemory)
{
    MemSystemConfig mcfg;
    mcfg.accessTime = 6;
    Harness h(straightLine, cfg1616(), mcfg);
    EXPECT_FALSE(h.unit.instructionReady());
    // tick 0 requests; data starts arriving at access time.
    for (unsigned i = 0; i < 7; ++i)
        h.step();
    EXPECT_TRUE(h.unit.instructionReady());
}

TEST(PipeFetch, StreamsInstructionsAsBeatsArrive)
{
    MemSystemConfig mcfg;
    mcfg.accessTime = 2;
    mcfg.busWidthBytes = 4; // one instruction per beat
    Harness h(straightLine, cfg1616(), mcfg);
    // After the first beat lands, one instruction is consumable even
    // though the line is still arriving.
    while (!h.unit.instructionReady())
        h.step();
    EXPECT_EQ(h.unit.take().inst.op, Opcode::Li);
    // The next beat arrives next cycle.
    h.step();
    EXPECT_TRUE(h.unit.instructionReady());
}

TEST(PipeFetch, FetchedLinesLandInTheCache)
{
    MemSystemConfig mcfg;
    mcfg.accessTime = 6;
    Harness h(straightLine, cfg1616(), mcfg);
    for (int i = 0; i < 9; ++i)
        h.pull(200);
    // Both code lines are now resident and fully valid.
    EXPECT_TRUE(h.unit.cache().lineValid(0));
    EXPECT_TRUE(h.unit.cache().lineValid(16));
}

TEST(PipeFetch, TakenBranchRedirectsAfterDelaySlots)
{
    const char *src = R"(
        lbr  b0, target
        pbr  b0, 2, always
        nop              ; slot 1
        nop              ; slot 2
        add r1, r1, r1   ; wrong path
        add r2, r2, r2   ; wrong path
    target:
        halt
    )";
    Harness h(src, cfg1616());
    EXPECT_EQ(h.pull().inst.op, Opcode::Lbr);
    EXPECT_EQ(h.pull().inst.op, Opcode::Pbr);
    // Resolution arrives one "pipeline cycle" later.
    h.step();
    h.unit.branchResolved(true, *h.program.symbol("target"));
    EXPECT_EQ(h.pull().inst.op, Opcode::Nop);
    EXPECT_EQ(h.pull().inst.op, Opcode::Nop);
    const auto fi = h.pull();
    EXPECT_EQ(fi.inst.op, Opcode::Halt);
    EXPECT_EQ(fi.pc, *h.program.symbol("target"));
}

TEST(PipeFetch, NotTakenContinuesSequentially)
{
    const char *src = R"(
        lbr  b0, 0
        pbr  b0, 1, always
        nop
        add r1, r1, r1
        halt
    )";
    Harness h(src, cfg1616());
    h.pull();                      // lbr
    h.pull();                      // pbr
    h.unit.branchResolved(false, 0);
    EXPECT_EQ(h.pull().inst.op, Opcode::Nop);
    EXPECT_EQ(h.pull().inst.op, Opcode::Add);
    EXPECT_EQ(h.pull().inst.op, Opcode::Halt);
}

TEST(PipeFetch, BlocksAtUnresolvedBranch)
{
    const char *src = R"(
        pbr  b0, 0, always
        nop
        halt
    )";
    Harness h(src, cfg1616());
    h.pull(); // pbr, zero delay slots
    for (int i = 0; i < 20; ++i) {
        EXPECT_FALSE(h.unit.instructionReady());
        h.step();
    }
    h.unit.branchResolved(true, 4);
    EXPECT_EQ(h.pull().inst.op, Opcode::Nop);
}

TEST(PipeFetch, LoopBodyServedFromCacheAfterFirstIteration)
{
    const char *src = R"(
        lbr b0, loop
    loop:
        add r1, r1, r1
        add r2, r2, r2
        pbr b0, 1, always
        nop
    )";
    Harness h(src, cfg1616());
    h.pull(); // lbr
    // Iteration 1 (cold).
    h.pull();
    h.pull();
    h.pull(); // pbr
    h.step();
    h.unit.branchResolved(true, *h.program.symbol("loop"));
    h.pull(); // delay slot

    const auto misses_cold = h.unit.cache().misses();
    // Several warm iterations must add no new misses.
    for (int iter = 0; iter < 3; ++iter) {
        h.pull();
        h.pull();
        h.pull();
        h.step();
        h.unit.branchResolved(true, *h.program.symbol("loop"));
        h.pull();
    }
    EXPECT_EQ(h.unit.cache().misses(), misses_cold);
}

TEST(PipeFetch, GuaranteedOnlyBlocksSpeculativePrefetch)
{
    const char *src = R"(
        pbr  b0, 1, always
        nop
        add r1, r1, r1
        add r2, r2, r2
        add r3, r3, r3
        add r4, r4, r4
        add r5, r5, r5
        halt
    )";
    FetchConfig fcfg = cfg1616(32);
    fcfg.lineBytes = 8;
    fcfg.iqBytes = 8;
    fcfg.iqbBytes = 8;
    fcfg.offchipPolicy = OffchipPolicy::GuaranteedOnly;
    Harness h(src, fcfg);
    StatGroup stats;
    h.unit.regStats(stats, "f");
    h.pull(); // pbr (line 0 was demand-fetched: guaranteed)
    // While the branch is unresolved, lines beyond the delay slot are
    // not guaranteed; the unit must report blocked fill opportunities
    // rather than fetch them.
    for (int i = 0; i < 30; ++i)
        h.step();
    EXPECT_GT(stats.counterValue("f.blocked_on_guarantee"), 0u);
}

TEST(PipeFetch, TruePrefetchRunsAhead)
{
    const char *src = R"(
        pbr  b0, 1, always
        nop
        add r1, r1, r1
        add r2, r2, r2
        add r3, r3, r3
        add r4, r4, r4
        add r5, r5, r5
        halt
    )";
    FetchConfig fcfg = cfg1616(32);
    fcfg.lineBytes = 8;
    fcfg.iqBytes = 8;
    fcfg.iqbBytes = 8;
    fcfg.offchipPolicy = OffchipPolicy::TruePrefetch;
    Harness h(src, fcfg);
    StatGroup stats;
    h.unit.regStats(stats, "f");
    h.pull(); // pbr
    for (int i = 0; i < 30; ++i)
        h.step();
    EXPECT_EQ(stats.counterValue("f.blocked_on_guarantee"), 0u);
    EXPECT_GT(stats.counterValue("f.offchip_prefetch_lines") +
                  stats.counterValue("f.offchip_demand_lines"),
              1u);
}

TEST(PipeFetch, SquashDiscardsWrongPathBytes)
{
    const char *src = R"(
        lbr  b0, target
        pbr  b0, 1, always
        nop
        add r1, r1, r1   ; wrong path, will be prefetched
        add r2, r2, r2
        add r3, r3, r3
    target:
        halt
    )";
    Harness h(src, cfg1616());
    StatGroup stats;
    h.unit.regStats(stats, "f");
    h.pull(); // lbr
    h.pull(); // pbr
    // Let sequential prefetch run ahead before resolving.
    for (int i = 0; i < 10; ++i)
        h.step();
    h.unit.branchResolved(true, *h.program.symbol("target"));
    h.pull(); // delay slot nop
    EXPECT_EQ(h.pull().inst.op, Opcode::Halt);
    EXPECT_GT(stats.counterValue("f.squashed_bytes"), 0u);
}

TEST(PipeFetch, ConfigValidation)
{
    Program p = assembler::assemble("halt");
    DataMemory dm(1 << 16);
    MemSystemConfig mcfg;
    MemorySystem sys(mcfg, dm);

    FetchConfig bad = cfg1616();
    bad.iqbBytes = 8; // smaller than the 16-byte line
    EXPECT_THROW(PipeFetchUnit(bad, p, sys), FatalError);

    FetchConfig tiny = cfg1616();
    tiny.iqBytes = 2;
    EXPECT_THROW(PipeFetchUnit(tiny, p, sys), FatalError);
}

TEST(PipeFetch, TakeWithoutReadyPanics)
{
    Harness h(straightLine, cfg1616());
    EXPECT_THROW(h.unit.take(), PanicError);
}
