#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "common/abort.hh"
#include "common/log.hh"

#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "sim/experiment.hh"
#include "sim/guard.hh"
#include "workloads/benchmark_program.hh"

using namespace pipesim;

namespace
{

const workloads::Benchmark &
tinyBenchmark()
{
    static const auto bench = workloads::buildLivermoreBenchmark(0.02);
    return bench;
}

struct ScratchDir
{
    explicit ScratchDir(std::string p) : path(std::move(p))
    {
        std::filesystem::remove_all(path);
    }
    ~ScratchDir() { std::filesystem::remove_all(path); }
    std::string path;
};

} // namespace

TEST(ExperimentTest, SweepTableShape)
{
    SweepSpec spec;
    spec.cacheSizes = {32, 64};
    spec.strategies = {"conv", "16-16"};
    const Table t = runCacheSweep(spec, tinyBenchmark().program).table;
    EXPECT_EQ(t.numCols(), 3u);
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.at(0, 0), "32");
    EXPECT_EQ(t.at(1, 0), "64");
    // Cycle counts are positive integers.
    EXPECT_GT(std::stoull(t.at(0, 1)), 0u);
    EXPECT_GT(std::stoull(t.at(0, 2)), 0u);
}

TEST(ExperimentTest, InvalidPointsRenderDash)
{
    SweepSpec spec;
    spec.cacheSizes = {16};
    spec.strategies = {"32-32"}; // 32-byte line cannot fit 16-byte cache
    const Table t = runCacheSweep(spec, tinyBenchmark().program).table;
    EXPECT_EQ(t.at(0, 1), "-");
}

TEST(ExperimentTest, PointValidity)
{
    SweepSpec spec;
    EXPECT_TRUE(sweepPointValid(spec, "conv", 16));
    EXPECT_TRUE(sweepPointValid(spec, "8-8", 16));
    EXPECT_FALSE(sweepPointValid(spec, "16-16", 8));
    EXPECT_FALSE(sweepPointValid(spec, "32-32", 16));
    EXPECT_TRUE(sweepPointValid(spec, "32-32", 32));
}

TEST(ExperimentTest, ConvSmallerThanLineIsInvalid)
{
    // Regression: "conv" used to be unconditionally valid, so a
    // conventional cache smaller than one line (e.g. a 32-byte line
    // in a 16-byte cache) built a degenerate config instead of
    // rendering "-" like the PIPE strategies do.
    SweepSpec spec;
    spec.convLineBytes = 32;
    EXPECT_FALSE(sweepPointValid(spec, "conv", 16));
    EXPECT_TRUE(sweepPointValid(spec, "conv", 32));
    EXPECT_FALSE(makeValidSweepConfig(spec, "conv", 16).has_value());

    spec.cacheSizes = {16, 32};
    spec.strategies = {"conv"};
    const Table t = runCacheSweep(spec, tinyBenchmark().program).table;
    EXPECT_EQ(t.at(0, 1), "-");
    EXPECT_NE(t.at(1, 1), "-");
}

TEST(ExperimentTest, MakeValidSweepConfigMatchesMakeSweepConfig)
{
    SweepSpec spec;
    spec.mem.accessTime = 6;
    spec.policy = OffchipPolicy::GuaranteedOnly;
    const auto valid = makeValidSweepConfig(spec, "16-16", 64);
    ASSERT_TRUE(valid.has_value());
    const SimConfig direct = makeSweepConfig(spec, "16-16", 64);
    EXPECT_EQ(valid->fetch.strategy, direct.fetch.strategy);
    EXPECT_EQ(valid->fetch.cacheBytes, direct.fetch.cacheBytes);
    EXPECT_EQ(valid->fetch.lineBytes, direct.fetch.lineBytes);
    EXPECT_EQ(valid->fetch.offchipPolicy, direct.fetch.offchipPolicy);
    EXPECT_EQ(valid->mem.accessTime, direct.mem.accessTime);
}

TEST(ExperimentTest, ParallelSweepIsDeterministic)
{
    // --jobs 1 and --jobs 8 must produce byte-identical tables and
    // identical per-point counters: per-run state is thread-local and
    // the table is assembled in (size, strategy) order.
    SweepSpec spec;
    spec.cacheSizes = {16, 32, 64, 128};
    spec.strategies = {"conv", "8-8", "16-16", "32-32"};
    spec.mem.accessTime = 2;

    using PointKey = std::pair<std::string, unsigned>;
    using CounterMap = std::map<PointKey,
                                std::map<std::string, std::uint64_t>>;
    auto runWith = [&](unsigned jobs, CounterMap &counters) {
        spec.jobs = jobs;
        return runCacheSweep(spec, tinyBenchmark().program,
                             [&counters](const std::string &strategy,
                                         unsigned cache,
                                         const SimResult &r) {
                                 counters[{strategy, cache}] = r.counters;
                             });
    };
    CounterMap serial_counters, parallel_counters;
    const Table serial = runWith(1, serial_counters).table;
    const Table parallel = runWith(8, parallel_counters).table;

    EXPECT_EQ(serial.toText(), parallel.toText());
    EXPECT_EQ(serial.toCsv(), parallel.toCsv());
    EXPECT_EQ(serial_counters.size(), parallel_counters.size());
    EXPECT_EQ(serial_counters, parallel_counters);
}

TEST(ExperimentTest, ParallelCallbacksAreSerialized)
{
    // preRun/postRun/on_point mutate this unguarded state; the
    // documented contract (all callbacks under one mutex) makes that
    // legal, and postRun/on_point for one point are consecutive.
    SweepSpec spec;
    spec.cacheSizes = {32, 64, 128, 256};
    spec.strategies = {"conv", "8-8", "16-16"};
    spec.jobs = 8;
    int depth = 0;
    int pre = 0, post = 0, observed = 0;
    std::string last_post;
    spec.preRun = [&](Simulator &, const std::string &, unsigned) {
        EXPECT_EQ(++depth, 1);
        ++pre;
        --depth;
    };
    spec.postRun = [&](Simulator &, const std::string &strategy,
                       unsigned cache, const SimResult &) {
        EXPECT_EQ(++depth, 1);
        ++post;
        last_post = strategy + ":" + std::to_string(cache);
        --depth;
    };
    runCacheSweep(spec, tinyBenchmark().program,
                  [&](const std::string &strategy, unsigned cache,
                      const SimResult &) {
                      EXPECT_EQ(++depth, 1);
                      ++observed;
                      // on_point follows this point's postRun.
                      EXPECT_EQ(last_post,
                                strategy + ":" + std::to_string(cache));
                      --depth;
                  });
    EXPECT_EQ(pre, 12);
    EXPECT_EQ(post, 12);
    EXPECT_EQ(observed, 12);
}

TEST(ExperimentTest, OnSweepEndRunsOnceAfterAllPoints)
{
    for (unsigned jobs : {1u, 4u}) {
        SweepSpec spec;
        spec.cacheSizes = {32, 64};
        spec.strategies = {"conv", "16-16"};
        spec.jobs = jobs;
        int points = 0;
        int end_calls = 0;
        spec.onSweepEnd = [&] {
            ++end_calls;
            EXPECT_EQ(points, 4);
        };
        runCacheSweep(spec, tinyBenchmark().program,
                      [&](const std::string &, unsigned,
                          const SimResult &) { ++points; });
        EXPECT_EQ(end_calls, 1);
    }
}

TEST(ExperimentTest, WorkerExceptionPropagates)
{
    // A failing point must not be swallowed by the pool: the
    // exception is rethrown to the caller after all workers finish.
    for (unsigned jobs : {1u, 4u}) {
        SweepSpec spec;
        spec.cacheSizes = {16, 32, 64};
        spec.strategies = {"conv", "8-8"};
        spec.jobs = jobs;
        spec.postRun = [](Simulator &, const std::string &strategy,
                          unsigned cache, const SimResult &) {
            if (strategy == "8-8" && cache == 32)
                fatal("injected failure at 8-8:32");
        };
        try {
            runCacheSweep(spec, tinyBenchmark().program);
            FAIL() << "expected FatalError (jobs=" << jobs << ")";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find("injected failure"),
                      std::string::npos);
        }
    }
}

TEST(ExperimentTest, MakeSweepConfigAppliesParameters)
{
    SweepSpec spec;
    spec.mem.accessTime = 6;
    spec.mem.busWidthBytes = 8;
    spec.mem.pipelined = true;
    spec.policy = OffchipPolicy::GuaranteedOnly;
    const SimConfig pipe = makeSweepConfig(spec, "16-16", 64);
    EXPECT_EQ(pipe.mem.accessTime, 6u);
    EXPECT_EQ(pipe.mem.busWidthBytes, 8u);
    EXPECT_TRUE(pipe.mem.pipelined);
    EXPECT_EQ(pipe.fetch.strategy, FetchStrategy::Pipe);
    EXPECT_EQ(pipe.fetch.offchipPolicy, OffchipPolicy::GuaranteedOnly);
    EXPECT_EQ(pipe.fetch.cacheBytes, 64u);

    const SimConfig conv = makeSweepConfig(spec, "conv", 64);
    EXPECT_EQ(conv.fetch.strategy, FetchStrategy::Conventional);
}

TEST(ExperimentTest, ObserverSeesEveryValidPoint)
{
    SweepSpec spec;
    spec.cacheSizes = {16, 32};
    spec.strategies = {"conv", "32-32"};
    unsigned points = 0;
    runCacheSweep(spec, tinyBenchmark().program,
                  [&](const std::string &, unsigned, const SimResult &r) {
                      ++points;
                      EXPECT_GT(r.totalCycles, 0u);
                  });
    EXPECT_EQ(points, 3u); // 32-32 at 16 bytes is skipped
}

TEST(ExperimentTest, TimingsFollowEnumerationOrder)
{
    SweepSpec spec;
    spec.cacheSizes = {16, 32};
    spec.strategies = {"conv", "32-32"};
    const SweepResult r = runCacheSweep(spec, tinyBenchmark().program);
    // One timing per valid point, in enumeration order (size-major,
    // matching the table's row-then-column walk).
    ASSERT_EQ(r.timings.size(), 3u); // 32-32 at 16 bytes is skipped
    EXPECT_EQ(r.timings[0].strategy, "conv");
    EXPECT_EQ(r.timings[0].cacheBytes, 16u);
    EXPECT_EQ(r.timings[1].strategy, "conv");
    EXPECT_EQ(r.timings[1].cacheBytes, 32u);
    EXPECT_EQ(r.timings[2].strategy, "32-32");
    EXPECT_EQ(r.timings[2].cacheBytes, 32u);
    for (const auto &t : r.timings) {
        EXPECT_EQ(t.attempts, 1u);
        EXPECT_GT(t.wallNs, 0u);
    }
}

TEST(ExperimentTest, ObservabilityPreservesDeterminism)
{
    // The full telemetry surface on (--progress, profiler enabled)
    // must not perturb results: tables stay byte-identical between
    // --jobs 1 and --jobs 8, the profiler records the same phase
    // paths (Scope::Root detaches sweep points from the worker
    // context), and the metrics key set is identical even though
    // --jobs 1 never constructs a thread pool (key-set contract).
    struct ProfilerGuard
    {
        ~ProfilerGuard()
        {
            obs::Profiler::instance().disable();
            obs::Profiler::instance().reset();
        }
    } guard;
    obs::Profiler::instance().disable();
    obs::Profiler::instance().reset();
    obs::Profiler::instance().enable();

    SweepSpec spec;
    spec.cacheSizes = {16, 32, 64};
    spec.strategies = {"conv", "8-8", "16-16"};
    spec.progress = true;

    auto phasePaths = [] {
        std::set<std::string> paths;
        for (const auto &p : obs::Profiler::instance().snapshot())
            paths.insert(p.path);
        return paths;
    };
    auto metricKeys = [] {
        std::set<std::string> keys;
        for (const auto &e : obs::MetricsRegistry::instance().entries())
            keys.insert(e.name);
        return keys;
    };
    using TimingKey = std::tuple<std::string, unsigned, unsigned>;
    auto timingKeys = [](const SweepResult &r) {
        std::vector<TimingKey> keys;
        for (const auto &t : r.timings)
            keys.emplace_back(t.strategy, t.cacheBytes, t.attempts);
        return keys;
    };

    spec.jobs = 1;
    const SweepResult serial =
        runCacheSweep(spec, tinyBenchmark().program);
    const auto serialPaths = phasePaths();
    const auto serialKeys = metricKeys();
    // --jobs 1 runs inline, yet the pool metrics must already exist.
    EXPECT_TRUE(serialKeys.count("pool.tasks"));
    EXPECT_TRUE(serialKeys.count("pool.workers"));
    EXPECT_TRUE(serialKeys.count("sweep.point_ns"));
    EXPECT_TRUE(serialPaths.count("sweep/run_points"));
    EXPECT_TRUE(serialPaths.count("point/sim.run"));

    obs::Profiler::instance().reset();
    obs::Profiler::instance().enable();
    spec.jobs = 8;
    const SweepResult parallel =
        runCacheSweep(spec, tinyBenchmark().program);

    EXPECT_EQ(serial.table.toText(), parallel.table.toText());
    EXPECT_EQ(serial.table.toCsv(), parallel.table.toCsv());
    EXPECT_EQ(timingKeys(serial), timingKeys(parallel));
    EXPECT_EQ(serialPaths, phasePaths());
    EXPECT_EQ(serialKeys, metricKeys());
}

TEST(ExperimentTest, BiggerCacheNeverMuchWorse)
{
    // Sanity on the sweep trend: the largest cache should beat the
    // smallest for both strategy families on this workload.
    SweepSpec spec;
    spec.cacheSizes = {16, 512};
    spec.strategies = {"conv", "8-8"};
    spec.mem.accessTime = 6;
    const Table t = runCacheSweep(spec, tinyBenchmark().program).table;
    EXPECT_GT(std::stoull(t.at(0, 1)), std::stoull(t.at(1, 1)));
    EXPECT_GT(std::stoull(t.at(0, 2)), std::stoull(t.at(1, 2)));
}

TEST(ExperimentFaultIsolation, CollectAndContinueRendersErrCellOnly)
{
    // One failing point must not take the sweep down: its cell reads
    // ERR, every other cell keeps its value, and the structured
    // failure record comes back in SweepResult::failures.
    SweepSpec spec;
    spec.cacheSizes = {16, 32, 64};
    spec.strategies = {"conv", "8-8"};
    spec.failurePolicy = SweepFailurePolicy::CollectAndContinue;
    spec.postRun = [](Simulator &, const std::string &strategy,
                      unsigned cache, const SimResult &) {
        if (strategy == "8-8" && cache == 32)
            fatal("injected failure at 8-8:32");
    };
    const SweepResult r = runCacheSweep(spec, tinyBenchmark().program);
    EXPECT_FALSE(r.ok());
    ASSERT_EQ(r.failures.size(), 1u);
    EXPECT_EQ(r.failures[0].strategy, "8-8");
    EXPECT_EQ(r.failures[0].cacheBytes, 32u);
    EXPECT_EQ(r.failures[0].attempts, 1u);
    EXPECT_NE(r.failures[0].message.find("injected failure"),
              std::string::npos);
    EXPECT_EQ(r.table.at(1, 2), "ERR");
    // Every other cell still carries a cycle count.
    EXPECT_GT(std::stoull(r.table.at(0, 2)), 0u);
    EXPECT_GT(std::stoull(r.table.at(2, 2)), 0u);
    for (std::size_t row = 0; row < 3; ++row)
        EXPECT_GT(std::stoull(r.table.at(row, 1)), 0u);
    EXPECT_NE(r.failureReport().find("8-8:32"), std::string::npos);
}

TEST(ExperimentFaultIsolation, RetryBudgetCountsAttempts)
{
    SweepSpec spec;
    spec.cacheSizes = {16};
    spec.strategies = {"conv"};
    spec.failurePolicy = SweepFailurePolicy::CollectAndContinue;
    spec.pointRetries = 2;
    int runs = 0;
    spec.postRun = [&runs](Simulator &, const std::string &, unsigned,
                           const SimResult &) {
        ++runs;
        fatal("always fails");
    };
    const SweepResult r = runCacheSweep(spec, tinyBenchmark().program);
    ASSERT_EQ(r.failures.size(), 1u);
    EXPECT_EQ(r.failures[0].attempts, 3u); // 1 try + 2 retries
    EXPECT_EQ(runs, 3);
}

TEST(ExperimentFaultIsolation, DeadlockedFaultPointReportsSnapshot)
{
    // An injected all-grants-delayed fault wedges exactly one point;
    // the sweep still completes, that cell renders ERR, the failure
    // carries the machine snapshot, and the whole report is
    // byte-identical for any worker count.
    auto sweep = [](unsigned jobs) {
        SweepSpec spec;
        spec.cacheSizes = {16, 32};
        spec.strategies = {"conv", "8-8"};
        spec.jobs = jobs;
        spec.failurePolicy = SweepFailurePolicy::CollectAndContinue;
        spec.progressWindow = 20000; // detect the wedge quickly
        spec.fault.kinds = fault::Grant;
        spec.fault.rate = 1.0; // no bus grant ever => clean deadlock
        spec.faultPoint = "8-8:32";
        return runCacheSweep(spec, tinyBenchmark().program);
    };
    const SweepResult serial = sweep(1);
    ASSERT_EQ(serial.failures.size(), 1u);
    const PointFailure &f = serial.failures[0];
    EXPECT_EQ(f.strategy, "8-8");
    EXPECT_EQ(f.cacheBytes, 32u);
    EXPECT_NE(f.message.find("deadlocked"), std::string::npos);
    EXPECT_NE(f.snapshot.find("machine snapshot at cycle"),
              std::string::npos);
    EXPECT_EQ(serial.table.at(1, 2), "ERR");
    EXPECT_GT(std::stoull(serial.table.at(0, 2)), 0u);
    EXPECT_GT(std::stoull(serial.table.at(0, 1)), 0u);
    EXPECT_GT(std::stoull(serial.table.at(1, 1)), 0u);

    const SweepResult parallel = sweep(8);
    EXPECT_EQ(serial.table.toText(), parallel.table.toText());
    EXPECT_EQ(serial.failureReport(), parallel.failureReport());
}

TEST(ExperimentFaultIsolation, FailFastRethrowsTheSimAbort)
{
    SweepSpec spec;
    spec.cacheSizes = {32};
    spec.strategies = {"8-8"};
    spec.failurePolicy = SweepFailurePolicy::FailFast;
    spec.progressWindow = 20000;
    spec.fault.kinds = fault::Grant;
    spec.fault.rate = 1.0;
    try {
        runCacheSweep(spec, tinyBenchmark().program);
        FAIL() << "expected SimAbort";
    } catch (const SimAbort &e) {
        EXPECT_TRUE(e.hasSnapshot());
    }
}

TEST(ExperimentRetryBackoff, DeterministicSeededSchedule)
{
    // The back-off is a pure function of the point identity and the
    // attempt number: no worker count, clock or RNG state leaks in.
    EXPECT_EQ(retryBackoffNs("8-8", 32, 2, 10),
              retryBackoffNs("8-8", 32, 2, 10));
    // The first attempt (and a zero base) never sleeps.
    EXPECT_EQ(retryBackoffNs("8-8", 32, 1, 10), 0u);
    EXPECT_EQ(retryBackoffNs("8-8", 32, 2, 0), 0u);
    // Exponential growth: every later attempt waits strictly longer
    // than the doubled floor of the one before it.
    const std::uint64_t baseNs = 10ull * 1'000'000;
    for (unsigned a = 2; a <= 7; ++a) {
        const std::uint64_t d = retryBackoffNs("8-8", 32, a, 10);
        EXPECT_GE(d, baseNs << (a - 2));
        EXPECT_LT(d, (baseNs << (a - 2)) + baseNs); // jitter < base
    }
    // The jitter separates distinct points' schedules.
    EXPECT_NE(retryBackoffNs("8-8", 32, 2, 10),
              retryBackoffNs("conv", 64, 2, 10));
}

// ---------------------------------------------------------------------
// The crash-safe result store wired through the sweep.

TEST(ExperimentStore, WarmSweepIsServedEntirelyFromTheStore)
{
    ScratchDir dir("exp_store_warm");
    SweepSpec spec;
    spec.cacheSizes = {16, 32, 64};
    spec.strategies = {"conv", "8-8"};
    spec.storeDir = dir.path;

    const SweepResult cold = runCacheSweep(spec, tinyBenchmark().program);
    EXPECT_EQ(cold.storeHits, 0u);
    EXPECT_EQ(cold.storeMisses, 6u);

    const SweepResult warm = runCacheSweep(spec, tinyBenchmark().program);
    EXPECT_EQ(warm.storeHits, 6u);
    EXPECT_EQ(warm.storeMisses, 0u);
    EXPECT_EQ(cold.table.toText(), warm.table.toText());
    EXPECT_EQ(cold.table.toCsv(), warm.table.toCsv());
    // Served points never ran: attempts reads 0 in the timings.
    for (const auto &t : warm.timings)
        EXPECT_EQ(t.attempts, 0u);

    // The store-backed table matches a store-less sweep exactly.
    SweepSpec plain = spec;
    plain.storeDir.clear();
    const SweepResult bare = runCacheSweep(plain, tinyBenchmark().program);
    EXPECT_EQ(bare.table.toText(), warm.table.toText());
}

TEST(ExperimentStore, PartialStoreSimulatesOnlyTheMissingPoints)
{
    ScratchDir dir("exp_store_partial");
    SweepSpec small;
    small.cacheSizes = {16, 32};
    small.strategies = {"conv", "8-8"};
    small.storeDir = dir.path;
    runCacheSweep(small, tinyBenchmark().program);

    // Growing the sweep reuses the journaled points: keys are
    // content-addressed, not positional.
    SweepSpec grown = small;
    grown.cacheSizes = {16, 32, 64};
    const SweepResult r = runCacheSweep(grown, tinyBenchmark().program);
    EXPECT_EQ(r.storeHits, 4u);
    EXPECT_EQ(r.storeMisses, 2u);

    SweepSpec plain = grown;
    plain.storeDir.clear();
    const SweepResult bare = runCacheSweep(plain, tinyBenchmark().program);
    EXPECT_EQ(bare.table.toText(), r.table.toText());
}

TEST(ExperimentStore, ErrPointIsReattemptedOnResumeNotServed)
{
    // A failed point is never journaled: the resumed sweep serves the
    // healthy points from the store and re-attempts the broken one,
    // with identical dispositions for --jobs 1 and --jobs 8.
    ScratchDir dir("exp_store_err");
    auto sweep = [&](unsigned jobs) {
        SweepSpec spec;
        spec.cacheSizes = {16, 32};
        spec.strategies = {"conv", "8-8"};
        spec.jobs = jobs;
        spec.storeDir = dir.path;
        spec.failurePolicy = SweepFailurePolicy::CollectAndContinue;
        spec.progressWindow = 20000;
        spec.fault.kinds = fault::Grant;
        spec.fault.rate = 1.0; // wedge exactly this point
        spec.faultPoint = "8-8:32";
        return runCacheSweep(spec, tinyBenchmark().program);
    };
    const SweepResult first = sweep(1);
    ASSERT_EQ(first.failures.size(), 1u);
    EXPECT_EQ(first.storeHits, 0u);
    EXPECT_EQ(first.table.at(1, 2), "ERR");

    const SweepResult resumed = sweep(1);
    EXPECT_EQ(resumed.storeHits, 3u); // the healthy points
    EXPECT_EQ(resumed.storeMisses, 1u);
    ASSERT_EQ(resumed.failures.size(), 1u);
    EXPECT_EQ(resumed.failures[0].strategy, "8-8");
    EXPECT_EQ(resumed.failures[0].cacheBytes, 32u);
    EXPECT_EQ(resumed.table.toText(), first.table.toText());

    const SweepResult pooled = sweep(8);
    EXPECT_EQ(pooled.storeHits, 3u);
    EXPECT_EQ(pooled.table.toText(), resumed.table.toText());
    EXPECT_EQ(pooled.failureReport(), resumed.failureReport());
}

TEST(ExperimentStore, DeadlineRendersTimeoutWithoutStallingTheSweep)
{
    // A point that exceeds --point-deadline-ms is cancelled
    // cooperatively and dispositioned ERR(timeout); every other point
    // completes normally.
    SweepSpec spec;
    spec.cacheSizes = {16, 32};
    spec.strategies = {"conv", "8-8"};
    spec.failurePolicy = SweepFailurePolicy::CollectAndContinue;
    // Keep the simulated-time watchdogs out of the way so only the
    // wall-clock deadline can fire on the wedged point.
    spec.progressWindow = 2'000'000'000;
    spec.fault.kinds = fault::Grant;
    spec.fault.rate = 1.0;
    spec.faultPoint = "8-8:32";
    spec.pointDeadlineMs = 50;
    const SweepResult r = runCacheSweep(spec, tinyBenchmark().program);
    ASSERT_EQ(r.failures.size(), 1u);
    EXPECT_TRUE(r.failures[0].timeout);
    EXPECT_NE(r.failures[0].message.find("deadline"), std::string::npos);
    EXPECT_EQ(r.table.at(1, 2), "ERR(timeout)");
    EXPECT_GT(std::stoull(r.table.at(0, 1)), 0u);
    EXPECT_GT(std::stoull(r.table.at(0, 2)), 0u);
    EXPECT_GT(std::stoull(r.table.at(1, 1)), 0u);
    // The CSV treats the timeout sentinel like any other ERR: the
    // cell is blanked and the note column names it.
    EXPECT_NE(r.table.toCsv().find("=ERR(timeout)"), std::string::npos);
}

TEST(ExperimentStore, SignalInterruptionAbortsThenResumesLosslessly)
{
    ScratchDir dir("exp_store_signal");
    struct SignalGuard
    {
        ~SignalGuard() { clearPendingSignal(); }
    } guard;

    SweepSpec plain;
    plain.cacheSizes = {16, 32, 64};
    plain.strategies = {"conv", "8-8"};
    plain.jobs = 1;
    const SweepResult baseline =
        runCacheSweep(plain, tinyBenchmark().program);

    // "SIGINT" arrives while the third point is starting: the sweep
    // must stop cleanly with the finished points journaled.
    SweepSpec interruptedSpec = plain;
    interruptedSpec.storeDir = dir.path;
    int started = 0;
    interruptedSpec.preRun = [&](Simulator &, const std::string &,
                                 unsigned) {
        if (++started == 3)
            requestShutdown(SIGINT);
    };
    EXPECT_THROW(
        runCacheSweep(interruptedSpec, tinyBenchmark().program),
        InterruptedError);
    clearPendingSignal();

    // The resumed sweep serves the journaled prefix and produces a
    // table byte-identical to the uninterrupted baseline.
    SweepSpec resumedSpec = plain;
    resumedSpec.storeDir = dir.path;
    const SweepResult resumed =
        runCacheSweep(resumedSpec, tinyBenchmark().program);
    EXPECT_TRUE(resumed.ok());
    EXPECT_GT(resumed.storeHits, 0u);
    EXPECT_EQ(resumed.table.toText(), baseline.table.toText());
}
