#include <gtest/gtest.h>

#include "common/log.hh"

#include "sim/experiment.hh"
#include "workloads/benchmark_program.hh"

using namespace pipesim;

namespace
{

const workloads::Benchmark &
tinyBenchmark()
{
    static const auto bench = workloads::buildLivermoreBenchmark(0.02);
    return bench;
}

} // namespace

TEST(ExperimentTest, SweepTableShape)
{
    SweepSpec spec;
    spec.cacheSizes = {32, 64};
    spec.strategies = {"conv", "16-16"};
    const Table t = runCacheSweep(spec, tinyBenchmark().program);
    EXPECT_EQ(t.numCols(), 3u);
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.at(0, 0), "32");
    EXPECT_EQ(t.at(1, 0), "64");
    // Cycle counts are positive integers.
    EXPECT_GT(std::stoull(t.at(0, 1)), 0u);
    EXPECT_GT(std::stoull(t.at(0, 2)), 0u);
}

TEST(ExperimentTest, InvalidPointsRenderDash)
{
    SweepSpec spec;
    spec.cacheSizes = {16};
    spec.strategies = {"32-32"}; // 32-byte line cannot fit 16-byte cache
    const Table t = runCacheSweep(spec, tinyBenchmark().program);
    EXPECT_EQ(t.at(0, 1), "-");
}

TEST(ExperimentTest, PointValidity)
{
    SweepSpec spec;
    EXPECT_TRUE(sweepPointValid(spec, "conv", 16));
    EXPECT_TRUE(sweepPointValid(spec, "8-8", 16));
    EXPECT_FALSE(sweepPointValid(spec, "16-16", 8));
    EXPECT_FALSE(sweepPointValid(spec, "32-32", 16));
    EXPECT_TRUE(sweepPointValid(spec, "32-32", 32));
}

TEST(ExperimentTest, MakeSweepConfigAppliesParameters)
{
    SweepSpec spec;
    spec.mem.accessTime = 6;
    spec.mem.busWidthBytes = 8;
    spec.mem.pipelined = true;
    spec.policy = OffchipPolicy::GuaranteedOnly;
    const SimConfig pipe = makeSweepConfig(spec, "16-16", 64);
    EXPECT_EQ(pipe.mem.accessTime, 6u);
    EXPECT_EQ(pipe.mem.busWidthBytes, 8u);
    EXPECT_TRUE(pipe.mem.pipelined);
    EXPECT_EQ(pipe.fetch.strategy, FetchStrategy::Pipe);
    EXPECT_EQ(pipe.fetch.offchipPolicy, OffchipPolicy::GuaranteedOnly);
    EXPECT_EQ(pipe.fetch.cacheBytes, 64u);

    const SimConfig conv = makeSweepConfig(spec, "conv", 64);
    EXPECT_EQ(conv.fetch.strategy, FetchStrategy::Conventional);
}

TEST(ExperimentTest, ObserverSeesEveryValidPoint)
{
    SweepSpec spec;
    spec.cacheSizes = {16, 32};
    spec.strategies = {"conv", "32-32"};
    unsigned points = 0;
    runCacheSweep(spec, tinyBenchmark().program,
                  [&](const std::string &, unsigned, const SimResult &r) {
                      ++points;
                      EXPECT_GT(r.totalCycles, 0u);
                  });
    EXPECT_EQ(points, 3u); // 32-32 at 16 bytes is skipped
}

TEST(ExperimentTest, BiggerCacheNeverMuchWorse)
{
    // Sanity on the sweep trend: the largest cache should beat the
    // smallest for both strategy families on this workload.
    SweepSpec spec;
    spec.cacheSizes = {16, 512};
    spec.strategies = {"conv", "8-8"};
    spec.mem.accessTime = 6;
    const Table t = runCacheSweep(spec, tinyBenchmark().program);
    EXPECT_GT(std::stoull(t.at(0, 1)), std::stoull(t.at(1, 1)));
    EXPECT_GT(std::stoull(t.at(0, 2)), std::stoull(t.at(1, 2)));
}
