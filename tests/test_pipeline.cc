#include <gtest/gtest.h>

#include "common/log.hh"

#include <bit>

#include "assembler/assembler.hh"
#include "sim/simulator.hh"

using namespace pipesim;

namespace
{

/** Assemble, run to completion, return the simulator for inspection. */
std::unique_ptr<Simulator>
runAsm(const std::string &src, SimConfig cfg = {})
{
    cfg.progressWindow = 100000;
    Program prog = assembler::assemble(src);
    auto sim = std::make_unique<Simulator>(cfg, prog);
    sim->run();
    return sim;
}

Word
resultWord(Simulator &sim, Addr addr = 0x4000)
{
    return sim.dataMemory().readWord(addr);
}

/** Wrap a compute snippet so it stores r1 to 0x4000 and halts. */
std::string
computeR1(const std::string &body)
{
    return body + R"(
        li   r6, 0x4000
        st   [r6 + 0]
        mov  r7, r1
        halt
    )";
}

} // namespace

TEST(PipelineExec, ArithmeticAndLogic)
{
    struct Case { const char *body; Word expect; };
    const Case cases[] = {
        {"li r2, 7\nli r3, 5\nadd r1, r2, r3", 12},
        {"li r2, 7\nli r3, 5\nsub r1, r2, r3", 2},
        {"li r2, 5\nli r3, 7\nsub r1, r2, r3", Word(-2)},
        {"li r2, 12\nli r3, 10\nand r1, r2, r3", 8},
        {"li r2, 12\nli r3, 10\nor r1, r2, r3", 14},
        {"li r2, 12\nli r3, 10\nxor r1, r2, r3", 6},
        {"li r2, 3\nli r3, 4\nsll r1, r2, r3", 48},
        {"li r2, 48\nli r3, 4\nsrl r1, r2, r3", 3},
        {"li r2, -16\nli r3, 2\nsra r1, r2, r3", Word(-4)},
        {"li r2, -16\nli r3, 2\nsrl r1, r2, r3", 0x3ffffffc},
        {"li r2, 7\naddi r1, r2, -3", 4},
        {"li r2, 7\nsubi r1, r2, 10", Word(-3)},
        {"li r2, 0xff\nandi r1, r2, 0x0f", 0x0f},
        {"li r2, 1\nslli r1, r2, 10", 1024},
        {"li r2, -1\nsrai r1, r2, 4", Word(-1)},
        {"li r2, 5\nmov r1, r2", 5},
        {"li r2, 0\nnot r1, r2", 0xffffffff},
        {"li r2, 5\nneg r1, r2", Word(-5)},
        {"lui r1, 0x12", 0x120000},
        {"lui r1, 0x12\nori r1, r1, 0x8000", 0x128000},
    };
    for (const Case &c : cases) {
        auto sim = runAsm(computeR1(c.body));
        EXPECT_EQ(resultWord(*sim), c.expect) << c.body;
    }
}

TEST(PipelineExec, LoadDataQueuePopsInOrder)
{
    const char *src = R"(
        li  r1, 0x4000
        ld  [r1 + 0]      ; 11
        ld  [r1 + 4]      ; 22
        sub r2, r7, r7    ; 11 - 22 = -11
        st  [r1 + 8]
        mov r7, r2
        halt
    .data 0x4000
        .word 11, 22, 0
    )";
    auto sim = runAsm(src);
    EXPECT_EQ(resultWord(*sim, 0x4008), Word(-11));
}

TEST(PipelineExec, StoreAddressAndDataPairFifo)
{
    const char *src = R"(
        li  r1, 0x4000
        st  [r1 + 0]
        st  [r1 + 4]
        li  r2, 111
        mov r7, r2
        li  r3, 222
        mov r7, r3
        halt
    .data 0x4000
        .word 0, 0
    )";
    auto sim = runAsm(src);
    EXPECT_EQ(resultWord(*sim, 0x4000), 111u);
    EXPECT_EQ(resultWord(*sim, 0x4004), 222u);
}

TEST(PipelineExec, IndexedAddressing)
{
    const char *src = R"(
        li  r1, 0x4000
        li  r2, 8
        ldx [r1 + r2]     ; load word at 0x4008
        li  r3, 4
        stx [r1 + r3]     ; store it at 0x4004
        mov r7, r7
        halt
    .data 0x4000
        .word 1, 2, 33
    )";
    auto sim = runAsm(src);
    EXPECT_EQ(resultWord(*sim, 0x4004), 33u);
}

TEST(PipelineExec, PbrConditionSemantics)
{
    // For each condition, branch over a "marker" store when taken.
    struct Case { const char *cond; int value; bool taken; };
    const Case cases[] = {
        {"always", 0, true},   {"eqz", 0, true},   {"eqz", 1, false},
        {"nez", 0, false},     {"nez", 5, true},   {"ltz", -1, true},
        {"ltz", 0, false},     {"gez", 0, true},   {"gez", -2, false},
        {"gtz", 1, true},      {"gtz", 0, false},  {"lez", 0, true},
        {"lez", 3, false},
    };
    for (const Case &c : cases) {
        std::string src = std::string(R"(
            li  r2, )") + std::to_string(c.value) + R"(
            li  r6, 0x4000
            lbr b0, skipped
            pbr b0, 0, )" + c.cond +
                          (std::string(c.cond) == "always" ? "" : ", r2") +
                          R"(
            st  [r6 + 0]     ; only on the fall-through path
            li  r3, 1
            mov r7, r3
        skipped:
            halt
        .data 0x4000
            .word 0
        )";
        auto sim = runAsm(src);
        EXPECT_EQ(resultWord(*sim), c.taken ? 0u : 1u)
            << c.cond << " " << c.value;
    }
}

TEST(PipelineExec, DelaySlotsExecuteOnTakenBranch)
{
    const char *src = R"(
        li  r6, 0x4000
        li  r1, 0
        lbr b0, out
        pbr b0, 2, always
        addi r1, r1, 1     ; slot 1
        addi r1, r1, 1     ; slot 2
        addi r1, r1, 100   ; skipped
    out:
        st  [r6 + 0]
        mov r7, r1
        halt
    .data 0x4000
        .word 0
    )";
    auto sim = runAsm(src);
    EXPECT_EQ(resultWord(*sim), 2u);
}

TEST(PipelineExec, LoopWithCounterRunsExactTripCount)
{
    const char *src = R"(
        li  r1, 0         ; sum
        li  r2, 10        ; counter
        lbr b0, loop
    loop:
        addi r1, r1, 3
        subi r2, r2, 1
        pbr b0, 0, nez, r2
        li  r6, 0x4000
        st  [r6 + 0]
        mov r7, r1
        halt
    .data 0x4000
        .word 0
    )";
    auto sim = runAsm(src);
    EXPECT_EQ(resultWord(*sim), 30u);
}

TEST(PipelineExec, RswSwitchesRegisterBanks)
{
    const char *src = R"(
        li  r1, 42
        rsw
        li  r1, 7
        rsw
        li  r6, 0x4000
        st  [r6 + 0]
        mov r7, r1
        halt
    .data 0x4000
        .word 0
    )";
    auto sim = runAsm(src);
    EXPECT_EQ(resultWord(*sim), 42u);
}

TEST(PipelineExec, FpuThroughQueues)
{
    // 2.5 * 4.0 = 10.0 through the memory-mapped FPU.
    const char *src = R"(
        li  r6, 0x4000
        ld  [r6 + 0]       ; 2.5
        ld  [r6 + 4]       ; 4.0
        li  r1, 0x7f00     ; FPU base
        st  [r1 + 32]      ; mul A
        mov r7, r7
        st  [r1 + 36]      ; mul B
        mov r7, r7
        ld  [r1 + 40]      ; mul result
        st  [r6 + 8]
        mov r7, r7
        halt
    .data 0x4000
        .float 2.5, 4.0
        .word 0
    )";
    auto sim = runAsm(src);
    EXPECT_EQ(resultWord(*sim, 0x4008), std::bit_cast<Word>(10.0f));
}

TEST(PipelineExec, IssueStallsOnEmptyLdq)
{
    SimConfig cfg;
    cfg.mem.accessTime = 6;
    const char *src = R"(
        li  r1, 0x4000
        ld  [r1 + 0]
        mov r2, r7
        halt
    .data 0x4000
        .word 5
    )";
    auto sim = runAsm(src, cfg);
    EXPECT_GT(sim->stats().counterValue("cpu.stall_ldq_empty"), 0u);
}

TEST(PipelineExec, HaltStopsIssueAndDrains)
{
    const char *src = R"(
        li  r1, 0x4000
        st  [r1 + 0]
        li  r2, 9
        mov r7, r2
        halt
        li  r3, 1        ; must never issue
    .data 0x4000
        .word 0
    )";
    auto sim = runAsm(src);
    EXPECT_TRUE(sim->pipeline().halted());
    EXPECT_TRUE(sim->pipeline().drained());
    EXPECT_EQ(resultWord(*sim), 9u); // store drained after halt
    EXPECT_EQ(sim->pipeline().instructionsRetired(), 5u);
}

TEST(PipelineExec, RetiredCountAndCpi)
{
    auto sim = runAsm("nop\nnop\nnop\nhalt");
    const auto res = sim->result();
    EXPECT_EQ(res.instructions, 4u);
    EXPECT_GT(res.totalCycles, 0u);
    EXPECT_GT(res.cpi(), 0.0);
}

TEST(PipelineExec, QueueBackpressureDoesNotDeadlock)
{
    // More stores than SAQ/SDQ entries, slow memory: issue must
    // stall and resume correctly.
    SimConfig cfg;
    cfg.mem.accessTime = 6;
    cfg.cpu.saqEntries = 2;
    cfg.cpu.sdqEntries = 2;
    std::string src = "li r1, 0x4000\n";
    for (int i = 0; i < 8; ++i) {
        src += "st [r1 + " + std::to_string(4 * i) + "]\n";
        src += "li r2, " + std::to_string(i + 1) + "\n";
        src += "mov r7, r2\n";
    }
    src += "halt\n.data 0x4000\n.space 32\n";
    auto sim = runAsm(src, cfg);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(resultWord(*sim, 0x4000 + 4 * i), Word(i + 1));
}
