#include <gtest/gtest.h>

#include "common/log.hh"

#include "assembler/program.hh"

using namespace pipesim;
using isa::FormatMode;
using isa::Instruction;
using isa::Opcode;

namespace
{

Instruction
nopInst()
{
    Instruction i;
    i.op = Opcode::Nop;
    return i;
}

Instruction
liInst(unsigned rd, int imm)
{
    Instruction i;
    i.op = Opcode::Li;
    i.rd = std::uint8_t(rd);
    i.imm = imm;
    return i;
}

} // namespace

TEST(ProgramTest, AppendAdvancesAddresses)
{
    Program p(FormatMode::Compact);
    EXPECT_EQ(p.append(nopInst()), 0u);   // 1 parcel
    EXPECT_EQ(p.append(liInst(1, 5)), 2u); // 2 parcels
    EXPECT_EQ(p.nextCodeAddr(), 6u);
    EXPECT_EQ(p.codeSize(), 6u);
}

TEST(ProgramTest, Fixed32EveryInstructionFourBytes)
{
    Program p(FormatMode::Fixed32);
    p.append(nopInst());
    p.append(nopInst());
    EXPECT_EQ(p.codeSize(), 8u);
    EXPECT_EQ(p.decodeAt(4)->op, Opcode::Nop);
}

TEST(ProgramTest, DecodeAtRoundTrips)
{
    Program p(FormatMode::Compact);
    p.append(liInst(3, -77));
    const auto inst = p.decodeAt(0);
    ASSERT_TRUE(inst);
    EXPECT_EQ(inst->op, Opcode::Li);
    EXPECT_EQ(inst->rd, 3);
    EXPECT_EQ(inst->imm, -77);
}

TEST(ProgramTest, DecodeOutsideCodeIsNullopt)
{
    Program p(FormatMode::Compact);
    p.append(nopInst());
    EXPECT_FALSE(p.decodeAt(100));
    EXPECT_TRUE(p.decodeAt(0));
}

TEST(ProgramTest, ParcelAtOutsideCodeReadsZero)
{
    Program p(FormatMode::Compact);
    p.append(nopInst());
    EXPECT_EQ(p.parcelAt(50), 0u);
}

TEST(ProgramTest, ParcelAtUnalignedPanics)
{
    Program p(FormatMode::Compact);
    p.append(nopInst());
    EXPECT_THROW(p.parcelAt(1), PanicError);
}

TEST(ProgramTest, PatchParcel)
{
    Program p(FormatMode::Compact);
    p.append(nopInst());
    p.patchParcel(0, 0x1234);
    EXPECT_EQ(p.parcelAt(0), 0x1234);
    EXPECT_THROW(p.patchParcel(100, 0), PanicError);
}

TEST(ProgramTest, SymbolsDefineAndLookup)
{
    Program p;
    p.defineSymbol("loop", 0x40);
    EXPECT_EQ(p.symbol("loop"), Addr(0x40));
    EXPECT_FALSE(p.symbol("nothere"));
    EXPECT_THROW(p.defineSymbol("loop", 0x80), FatalError);
}

TEST(ProgramTest, DataSegments)
{
    Program p;
    p.addDataWords(0x1000, {0xdeadbeef, 0x12345678});
    ASSERT_EQ(p.dataSegments().size(), 1u);
    const auto &seg = p.dataSegments()[0];
    EXPECT_EQ(seg.base, 0x1000u);
    ASSERT_EQ(seg.bytes.size(), 8u);
    EXPECT_EQ(seg.bytes[0], 0xef);
    EXPECT_EQ(seg.bytes[3], 0xde);
    EXPECT_EQ(seg.bytes[4], 0x78);
}

TEST(ProgramTest, EntryDefaultsToCodeBase)
{
    Program p(FormatMode::Compact, 0x100);
    EXPECT_EQ(p.entry(), 0x100u);
    p.setEntry(0x104);
    EXPECT_EQ(p.entry(), 0x104u);
}

TEST(ProgramTest, CodeBaseOffsetsAddresses)
{
    Program p(FormatMode::Compact, 0x200);
    EXPECT_EQ(p.append(nopInst()), 0x200u);
    EXPECT_TRUE(p.inCode(0x200));
    EXPECT_FALSE(p.inCode(0x1ff));
    EXPECT_TRUE(p.decodeAt(0x200));
    EXPECT_FALSE(p.decodeAt(0));
}

TEST(ProgramTest, UnalignedCodeBasePanics)
{
    EXPECT_THROW(Program(FormatMode::Compact, 1), PanicError);
}
