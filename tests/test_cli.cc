#include <gtest/gtest.h>

#include "common/log.hh"
#include "sim/cli.hh"

using namespace pipesim;

namespace
{

bool
parseArgs(CliParser &cli, std::initializer_list<const char *> args)
{
    std::vector<const char *> argv{"tool"};
    argv.insert(argv.end(), args.begin(), args.end());
    return cli.parse(int(argv.size()), argv.data());
}

} // namespace

TEST(CliTest, DefaultsApply)
{
    CliParser cli("test tool");
    cli.addOption("size", "128", "cache size");
    ASSERT_TRUE(parseArgs(cli, {}));
    EXPECT_EQ(cli.get("size"), "128");
    EXPECT_EQ(cli.getInt("size"), 128);
}

TEST(CliTest, OptionsOverrideDefaults)
{
    CliParser cli("t");
    cli.addOption("size", "128", "");
    ASSERT_TRUE(parseArgs(cli, {"--size", "256"}));
    EXPECT_EQ(cli.getInt("size"), 256);
}

TEST(CliTest, EqualsSyntax)
{
    CliParser cli("t");
    cli.addOption("scale", "1.0", "");
    ASSERT_TRUE(parseArgs(cli, {"--scale=0.5"}));
    EXPECT_DOUBLE_EQ(cli.getDouble("scale"), 0.5);
}

TEST(CliTest, Flags)
{
    CliParser cli("t");
    cli.addFlag("verbose", "");
    ASSERT_TRUE(parseArgs(cli, {"--verbose"}));
    EXPECT_TRUE(cli.getFlag("verbose"));

    CliParser cli2("t");
    cli2.addFlag("verbose", "");
    ASSERT_TRUE(parseArgs(cli2, {}));
    EXPECT_FALSE(cli2.getFlag("verbose"));
}

TEST(CliTest, PositionalArguments)
{
    CliParser cli("t");
    cli.addOption("x", "1", "");
    ASSERT_TRUE(parseArgs(cli, {"file1.s", "--x", "2", "file2.s"}));
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "file1.s");
    EXPECT_EQ(cli.positional()[1], "file2.s");
}

TEST(CliTest, HelpReturnsFalse)
{
    CliParser cli("t");
    cli.addOption("x", "1", "the x value");
    EXPECT_FALSE(parseArgs(cli, {"--help"}));
    EXPECT_NE(cli.usage().find("the x value"), std::string::npos);
}

TEST(CliTest, UnknownOptionIsFatal)
{
    CliParser cli("t");
    EXPECT_THROW(parseArgs(cli, {"--bogus"}), FatalError);
}

TEST(CliTest, MissingValueIsFatal)
{
    CliParser cli("t");
    cli.addOption("x", "1", "");
    EXPECT_THROW(parseArgs(cli, {"--x"}), FatalError);
}

TEST(CliTest, BadNumbersAreFatal)
{
    CliParser cli("t");
    cli.addOption("n", "1", "");
    ASSERT_TRUE(parseArgs(cli, {"--n", "abc"}));
    EXPECT_THROW(cli.getInt("n"), FatalError);
    EXPECT_THROW(cli.getDouble("n"), FatalError);
}

TEST(CliTest, TrailingGarbageInDoubleIsFatal)
{
    // std::stod would silently parse "1.5x" as 1.5; getDouble must
    // reject any value that is not entirely a number.
    for (const char *bad : {"1.5x", "2.0 3.0", "0.5,", "1e", "."}) {
        CliParser cli("t");
        cli.addOption("scale", "1.0", "");
        ASSERT_TRUE(parseArgs(cli, {"--scale", bad})) << bad;
        EXPECT_THROW(cli.getDouble("scale"), FatalError) << bad;
    }
    // Clean forms still parse, including exponent/sign syntax.
    CliParser cli("t");
    cli.addOption("scale", "1.0", "");
    ASSERT_TRUE(parseArgs(cli, {"--scale", "-2.5e-1"}));
    EXPECT_DOUBLE_EQ(cli.getDouble("scale"), -0.25);
}

TEST(CliTest, FlagWithValueIsFatal)
{
    CliParser cli("t");
    cli.addFlag("v", "");
    EXPECT_THROW(parseArgs(cli, {"--v=1"}), FatalError);
}
