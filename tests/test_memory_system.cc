#include <gtest/gtest.h>

#include "common/log.hh"

#include <bit>
#include <deque>

#include "mem/memory_system.hh"

using namespace pipesim;

namespace
{

/** A scriptable memory client for driving the arbitration logic. */
class FakeClient : public MemClient
{
  public:
    std::deque<MemRequest> queue;
    unsigned acceptedCount = 0;

    std::optional<MemRequest>
    peek() override
    {
        if (queue.empty())
            return std::nullopt;
        return queue.front();
    }

    void
    accepted() override
    {
        queue.pop_front();
        ++acceptedCount;
    }
};

struct Harness
{
    explicit Harness(MemSystemConfig cfg = {})
        : mem(dataMem), sys(cfg, dataMem)
    {
        sys.setDataClient(&data);
        sys.setDemandClient(&demand);
        sys.setPrefetchClient(&prefetch);
    }

    void
    run(Cycle cycles)
    {
        for (Cycle i = 0; i < cycles; ++i)
            sys.tick(now++);
    }

    DataMemory dataMem{1 << 16};
    DataMemory &mem;
    MemorySystem sys;
    FakeClient data, demand, prefetch;
    Cycle now = 0;
};

MemRequest
makeLoad(Addr addr, std::uint64_t seq, std::vector<Word> *sink)
{
    MemRequest req;
    req.addr = addr;
    req.bytes = wordBytes;
    req.cls = ReqClass::Data;
    req.dataSeq = seq;
    req.onData = [sink](Word w) { sink->push_back(w); };
    return req;
}

MemRequest
makeStore(Addr addr, Word value)
{
    MemRequest req;
    req.addr = addr;
    req.bytes = wordBytes;
    req.isStore = true;
    req.storeData = value;
    req.cls = ReqClass::Data;
    return req;
}

MemRequest
makeIFetch(Addr addr, unsigned bytes, ReqClass cls,
           std::vector<std::pair<Addr, unsigned>> *beats)
{
    MemRequest req;
    req.addr = addr;
    req.bytes = bytes;
    req.cls = cls;
    req.onBeat = [beats](Addr a, unsigned n) {
        beats->push_back({a, n});
    };
    return req;
}

} // namespace

TEST(MemorySystemTest, LoadRoundTripLatency)
{
    MemSystemConfig cfg;
    cfg.accessTime = 3;
    Harness h(cfg);
    h.dataMem.writeWord(0x100, 0xabcd);
    std::vector<Word> got;
    h.data.queue.push_back(makeLoad(0x100, 0, &got));

    h.run(3); // accepted at cycle 0, ready at 3, delivered at tick 3
    EXPECT_TRUE(got.empty());
    h.run(1);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 0xabcdu);
}

TEST(MemorySystemTest, StoreThenLoadSeesNewValue)
{
    Harness h;
    h.data.queue.push_back(makeStore(0x40, 123));
    std::vector<Word> got;
    h.data.queue.push_back(makeLoad(0x40, 0, &got));
    h.run(10);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 123u);
}

TEST(MemorySystemTest, LoadBeforeStoreSeesOldValue)
{
    // Program order: load first, then a store to the same address.
    MemSystemConfig cfg;
    cfg.accessTime = 4;
    cfg.pipelined = true;
    Harness h(cfg);
    h.dataMem.writeWord(0x40, 7);
    std::vector<Word> got;
    h.data.queue.push_back(makeLoad(0x40, 0, &got));
    h.data.queue.push_back(makeStore(0x40, 99));
    h.run(12);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 7u); // captured at acceptance, not delivery
    EXPECT_EQ(h.dataMem.readWord(0x40), 99u);
}

TEST(MemorySystemTest, LineFetchBeatsMatchBusWidth)
{
    MemSystemConfig cfg;
    cfg.accessTime = 1;
    cfg.busWidthBytes = 8;
    Harness h(cfg);
    std::vector<std::pair<Addr, unsigned>> beats;
    h.demand.queue.push_back(
        makeIFetch(0x200, 32, ReqClass::IFetchDemand, &beats));
    h.run(10);
    ASSERT_EQ(beats.size(), 4u);
    EXPECT_EQ(beats[0], (std::pair<Addr, unsigned>{0x200, 8}));
    EXPECT_EQ(beats[3], (std::pair<Addr, unsigned>{0x218, 8}));
}

TEST(MemorySystemTest, NarrowBusTakesTwiceTheBeats)
{
    MemSystemConfig cfg;
    cfg.busWidthBytes = 4;
    Harness h(cfg);
    std::vector<std::pair<Addr, unsigned>> beats;
    h.demand.queue.push_back(
        makeIFetch(0x200, 32, ReqClass::IFetchDemand, &beats));
    h.run(12);
    EXPECT_EQ(beats.size(), 8u);
}

TEST(MemorySystemTest, InstructionPriorityConfigurable)
{
    for (bool ipriority : {true, false}) {
        MemSystemConfig cfg;
        cfg.instructionPriority = ipriority;
        Harness h(cfg);
        std::vector<Word> got;
        std::vector<std::pair<Addr, unsigned>> beats;
        h.data.queue.push_back(makeLoad(0x10, 0, &got));
        h.demand.queue.push_back(
            makeIFetch(0x100, 4, ReqClass::IFetchDemand, &beats));
        // One tick: exactly one of the two is accepted.
        h.sys.tick(h.now++);
        if (ipriority) {
            EXPECT_EQ(h.demand.acceptedCount, 1u);
            EXPECT_EQ(h.data.acceptedCount, 0u);
        } else {
            EXPECT_EQ(h.demand.acceptedCount, 0u);
            EXPECT_EQ(h.data.acceptedCount, 1u);
        }
    }
}

TEST(MemorySystemTest, PrefetchAlwaysLoses)
{
    MemSystemConfig cfg;
    cfg.pipelined = true;
    Harness h(cfg);
    std::vector<std::pair<Addr, unsigned>> beats;
    h.prefetch.queue.push_back(
        makeIFetch(0x300, 4, ReqClass::IPrefetch, &beats));
    std::vector<Word> got;
    h.data.queue.push_back(makeLoad(0x10, 0, &got));
    h.sys.tick(h.now++);
    EXPECT_EQ(h.data.acceptedCount, 1u);
    EXPECT_EQ(h.prefetch.acceptedCount, 0u);
    h.sys.tick(h.now++);
    EXPECT_EQ(h.prefetch.acceptedCount, 1u);
}

TEST(MemorySystemTest, NonPipelinedSerialisesRequests)
{
    MemSystemConfig cfg;
    cfg.accessTime = 4;
    cfg.pipelined = false;
    Harness h(cfg);
    std::vector<Word> got;
    h.data.queue.push_back(makeLoad(0x10, 0, &got));
    h.data.queue.push_back(makeLoad(0x14, 1, &got));
    h.run(2);
    EXPECT_EQ(h.data.acceptedCount, 1u); // second waits
    h.run(10);
    EXPECT_EQ(h.data.acceptedCount, 2u);
    EXPECT_EQ(got.size(), 2u);
}

TEST(MemorySystemTest, PipelinedAcceptsEveryCycle)
{
    MemSystemConfig cfg;
    cfg.accessTime = 4;
    cfg.pipelined = true;
    Harness h(cfg);
    std::vector<Word> got;
    for (unsigned i = 0; i < 4; ++i)
        h.data.queue.push_back(makeLoad(0x10 + 4 * i, i, &got));
    h.run(4);
    EXPECT_EQ(h.data.acceptedCount, 4u);
    h.run(8);
    EXPECT_EQ(got.size(), 4u);
}

TEST(MemorySystemTest, DataLoadsDeliverInProgramOrderAcrossFpu)
{
    // Load 0 goes to the FPU (blocking on a result); load 1 to the
    // external memory.  Even with the memory pipelined, load 1 must
    // not enter the LDQ before load 0.
    MemSystemConfig cfg;
    cfg.accessTime = 1;
    cfg.pipelined = true;
    cfg.fpuLatency = 6;
    Harness h(cfg);
    h.dataMem.writeWord(0x20, 55);

    std::vector<Word> order;
    MemRequest fpu_read;
    fpu_read.addr = FpuDevice::opResult(FpuOp::Add);
    fpu_read.bytes = wordBytes;
    fpu_read.cls = ReqClass::Data;
    fpu_read.dataSeq = 0;
    fpu_read.onData = [&](Word) { order.push_back(0); };
    h.data.queue.push_back(fpu_read);
    MemRequest mem_load = makeLoad(0x20, 1, nullptr);
    mem_load.onData = [&](Word) { order.push_back(1); };
    h.data.queue.push_back(mem_load);
    // Operand stores that start the FPU op (after the loads in
    // program order).
    h.data.queue.push_back(
        makeStore(FpuDevice::opA(FpuOp::Add), std::bit_cast<Word>(1.0f)));
    h.data.queue.push_back(
        makeStore(FpuDevice::opB(FpuOp::Add), std::bit_cast<Word>(2.0f)));

    h.run(30);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 0u);
    EXPECT_EQ(order[1], 1u);
}

TEST(MemorySystemTest, FpuStoreDoesNotOccupyExternalMemory)
{
    MemSystemConfig cfg;
    cfg.accessTime = 6;
    cfg.pipelined = false;
    Harness h(cfg);
    // A long external load in flight...
    std::vector<Word> got;
    h.data.queue.push_back(makeLoad(0x10, 0, &got));
    h.sys.tick(h.now++);
    EXPECT_EQ(h.data.acceptedCount, 1u);
    // ...must not block a store routed to the FPU.
    h.data.queue.push_back(
        makeStore(FpuDevice::opA(FpuOp::Mul), std::bit_cast<Word>(2.f)));
    h.sys.tick(h.now++);
    EXPECT_EQ(h.data.acceptedCount, 2u);
}

TEST(MemorySystemTest, QuiescentTracksOutstandingWork)
{
    Harness h;
    EXPECT_TRUE(h.sys.quiescent());
    std::vector<Word> got;
    h.data.queue.push_back(makeLoad(0x10, 0, &got));
    h.sys.tick(h.now++);
    EXPECT_FALSE(h.sys.quiescent());
    h.run(5);
    EXPECT_TRUE(h.sys.quiescent());
}

TEST(MemorySystemTest, BusNarrowerThanWordRejected)
{
    MemSystemConfig cfg;
    cfg.busWidthBytes = 2;
    DataMemory mem(64);
    EXPECT_THROW(MemorySystem(cfg, mem), PanicError);
}

TEST(MemorySystemTest, AccessTimeOneDeliversNextCycle)
{
    MemSystemConfig cfg;
    cfg.accessTime = 1;
    Harness h(cfg);
    h.dataMem.writeWord(0x10, 9);
    std::vector<Word> got;
    h.data.queue.push_back(makeLoad(0x10, 0, &got));
    h.sys.tick(0); // accepted
    EXPECT_TRUE(got.empty());
    h.sys.tick(1); // delivered
    ASSERT_EQ(got.size(), 1u);
}

TEST(MemorySystemTest, NonPipelinedSingleBeatSustainsOnePerTwoCycles)
{
    // With access time 1 a 4-byte load stream completes one request
    // every other cycle in the strict non-pipelined model: accept at
    // t, deliver at t+1 (memory busy), accept next at t+1 after the
    // transfer finishes within the same tick.
    MemSystemConfig cfg;
    cfg.accessTime = 1;
    cfg.pipelined = false;
    Harness h(cfg);
    std::vector<Word> got;
    for (unsigned i = 0; i < 4; ++i)
        h.data.queue.push_back(makeLoad(0x10 + 4 * i, i, &got));
    h.run(9);
    EXPECT_EQ(got.size(), 4u);
}
